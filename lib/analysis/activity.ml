module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids
module B = Dfs_trace.Record_batch

type report = {
  interval : float;
  avg_active_users : float;
  sd_active_users : float;
  max_active_users : int;
  avg_user_throughput : float;
  sd_user_throughput : float;
  peak_user_throughput : float;
  peak_total_throughput : float;
}

(* [batches] must be replayable: the analysis makes one pass to find the
   time span, then a second for the bucket folds. *)
let analyze_seq ?(migrated_only = false) ~interval batches =
  (* time span; [t0] is the first record's time, as before *)
  let t0 = ref nan and t_end = ref neg_infinity in
  Seq.iter
    (fun batch ->
      let n = B.length batch in
      if n > 0 && Float.is_nan !t0 then t0 := B.time batch 0;
      for i = 0 to n - 1 do
        t_end := Float.max !t_end (B.Unsafe.time batch i)
      done)
    batches;
  if Float.is_nan !t0 then
    {
      interval;
      avg_active_users = 0.0;
      sd_active_users = 0.0;
      max_active_users = 0;
      avg_user_throughput = 0.0;
      sd_user_throughput = 0.0;
      peak_user_throughput = 0.0;
      peak_total_throughput = 0.0;
    }
  else begin
    let t0 = !t0 in
    let t_end = Float.max !t_end t0 in
    let n_buckets =
      max 1 (1 + int_of_float ((t_end -. t0) /. interval))
    in
    let bucket time =
      min (n_buckets - 1) (int_of_float ((time -. t0) /. interval))
    in
    (* (bucket, user) -> bytes; bucket -> active user set *)
    let bytes_tbl : (int * int, int ref) Hashtbl.t = Hashtbl.create 4096 in
    let active_tbl : (int, Ids.User.Set.t ref) Hashtbl.t =
      Hashtbl.create 1024
    in
    let mark_active b user =
      match Hashtbl.find_opt active_tbl b with
      | Some s -> s := Ids.User.Set.add user !s
      | None -> Hashtbl.replace active_tbl b (ref (Ids.User.Set.singleton user))
    in
    let add_bytes b user n =
      let key = (b, Ids.User.to_int user) in
      match Hashtbl.find_opt bytes_tbl key with
      | Some r -> r := !r + n
      | None -> Hashtbl.replace bytes_tbl key (ref n)
    in
    let relevant (migrated : bool) = (not migrated_only) || migrated in
    Seq.iter
      (fun batch ->
        for i = 0 to B.length batch - 1 do
          if relevant (B.Unsafe.migrated batch i) then begin
            let time = B.Unsafe.time batch i
            and user = B.Unsafe.user_id batch i in
            mark_active (bucket time) user;
            (* shared (pass-through) transfers carry their size directly:
               the length for shared reads/writes (payload column b), the
               byte count for directory reads (column a) *)
            let tag = B.Unsafe.tag batch i in
            if tag = B.tag_shared_read || tag = B.tag_shared_write then
              add_bytes (bucket time) user (B.Unsafe.b batch i)
            else if tag = B.tag_dir_read then
              add_bytes (bucket time) user (B.Unsafe.a batch i)
          end
        done)
      batches;
    Session.run_boundaries_seq batches ~f:(fun a time run ->
        if relevant a.a_migrated && not a.a_is_dir then
          add_bytes (bucket time) a.a_user run);
    (* active-user statistics over every interval, empty ones included *)
    let users_stats = Dfs_util.Stats.create () in
    let max_active = ref 0 in
    for b = 0 to n_buckets - 1 do
      let n =
        match Hashtbl.find_opt active_tbl b with
        | Some s -> Ids.User.Set.cardinal !s
        | None -> 0
      in
      if n > !max_active then max_active := n;
      Dfs_util.Stats.add users_stats (float_of_int n)
    done;
    (* throughput per active user-interval *)
    let tput_stats = Dfs_util.Stats.create () in
    let peak_user = ref 0.0 in
    Hashtbl.iter
      (fun b s ->
        Ids.User.Set.iter
          (fun user ->
            let bytes =
              match Hashtbl.find_opt bytes_tbl (b, Ids.User.to_int user) with
              | Some r -> !r
              | None -> 0
            in
            let kbs = float_of_int bytes /. 1024.0 /. interval in
            if kbs > !peak_user then peak_user := kbs;
            Dfs_util.Stats.add tput_stats kbs)
          !s)
      active_tbl;
    (* peak total throughput over intervals *)
    let totals : (int, int ref) Hashtbl.t = Hashtbl.create 1024 in
    Hashtbl.iter
      (fun (b, _) r ->
        match Hashtbl.find_opt totals b with
        | Some acc -> acc := !acc + !r
        | None -> Hashtbl.replace totals b (ref !r))
      bytes_tbl;
    let peak_total =
      Hashtbl.fold
        (fun _ r acc -> Float.max acc (float_of_int !r /. 1024.0 /. interval))
        totals 0.0
    in
    {
      interval;
      avg_active_users = Dfs_util.Stats.mean users_stats;
      sd_active_users = Dfs_util.Stats.stddev users_stats;
      max_active_users = !max_active;
      avg_user_throughput = Dfs_util.Stats.mean tput_stats;
      sd_user_throughput = Dfs_util.Stats.stddev tput_stats;
      peak_user_throughput = !peak_user;
      peak_total_throughput = peak_total;
    }
  end

let analyze ?migrated_only ~interval batch =
  analyze_seq ?migrated_only ~interval (Seq.return batch)

let pp ppf r =
  Format.fprintf ppf
    "@[<v>interval %.0fs: active users avg %.1f (sd %.1f) max %d;@ \
     throughput/user avg %.2f KB/s (sd %.2f) peak %.0f KB/s; peak total \
     %.0f KB/s@]"
    r.interval r.avg_active_users r.sd_active_users r.max_active_users
    r.avg_user_throughput r.sd_user_throughput r.peak_user_throughput
    r.peak_total_throughput
