type cell = { accesses : int; bytes : int }

type class_report = {
  total : cell;
  whole_file : cell;
  other_sequential : cell;
  random : cell;
}

type t = {
  read_only : class_report;
  write_only : class_report;
  read_write : class_report;
  grand_total : cell;
}

let zero_cell = { accesses = 0; bytes = 0 }

let zero_class =
  {
    total = zero_cell;
    whole_file = zero_cell;
    other_sequential = zero_cell;
    random = zero_cell;
  }

let bump cell ~bytes = { accesses = cell.accesses + 1; bytes = cell.bytes + bytes }

let bump_class cr ~seq ~bytes =
  let total = bump cr.total ~bytes in
  match (seq : Session.sequentiality) with
  | Session.Whole_file -> { cr with total; whole_file = bump cr.whole_file ~bytes }
  | Session.Other_sequential ->
    { cr with total; other_sequential = bump cr.other_sequential ~bytes }
  | Session.Random -> { cr with total; random = bump cr.random ~bytes }

type acc = {
  mutable ro : class_report;
  mutable wo : class_report;
  mutable rw : class_report;
  mutable grand : cell;
}

let acc_create () =
  { ro = zero_class; wo = zero_class; rw = zero_class; grand = zero_cell }

let acc_add acc (a : Session.access) =
  if not a.a_is_dir then
    match Session.usage a with
    | None -> ()
    | Some u ->
      let bytes = Session.bytes a in
      let seq = Session.sequentiality a in
      acc.grand <- bump acc.grand ~bytes;
      (match u with
      | Session.Read_only -> acc.ro <- bump_class acc.ro ~seq ~bytes
      | Session.Write_only -> acc.wo <- bump_class acc.wo ~seq ~bytes
      | Session.Read_write -> acc.rw <- bump_class acc.rw ~seq ~bytes)

let acc_finish acc =
  {
    read_only = acc.ro;
    write_only = acc.wo;
    read_write = acc.rw;
    grand_total = acc.grand;
  }

let analyze accesses =
  let acc = acc_create () in
  List.iter (acc_add acc) accesses;
  acc_finish acc

let of_trace trace = analyze (Session.of_trace trace)

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let pct_accesses t cr = pct cr.total.accesses t.grand_total.accesses

let pct_bytes t cr = pct cr.total.bytes t.grand_total.bytes

let seq_cell cr = function
  | Session.Whole_file -> cr.whole_file
  | Session.Other_sequential -> cr.other_sequential
  | Session.Random -> cr.random

let seq_pct_accesses cr seq = pct (seq_cell cr seq).accesses cr.total.accesses

let seq_pct_bytes cr seq = pct (seq_cell cr seq).bytes cr.total.bytes
