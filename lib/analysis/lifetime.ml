module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids

type t = {
  by_files : Dfs_util.Cdf.t;
  by_bytes : Dfs_util.Cdf.t;
  deaths_aged : int;
  deaths_unknown : int;
}

type write_state = { mutable oldest : float; mutable newest : float }

(* Number of interpolation points when spreading a dead file's bytes over
   the oldest..newest age range. *)
let byte_samples = 8

let analyze ?accesses trace =
  let by_files = Dfs_util.Cdf.create () in
  let by_bytes = Dfs_util.Cdf.create () in
  let aged = ref 0 and unknown = ref 0 in
  let states : write_state Ids.File.Tbl.t = Ids.File.Tbl.create 1024 in
  (* Interleave write-bearing closes with deletes/truncates in time order:
     closes are emitted by the session scan at close time, which is also
     their position in the record list, so a single merge suffices. *)
  let events =
    let accesses =
      (match accesses with Some l -> l | None -> Session.of_trace trace)
      |> List.filter (fun (a : Session.access) ->
             (not a.a_is_dir) && a.a_bytes_written > 0)
      |> List.map (fun a -> (a.Session.a_close_time, `Write a))
    in
    let deaths =
      Array.fold_left
        (fun acc (r : Record.t) ->
          match r.kind with
          | Record.Delete { size; is_dir = false } ->
            (r.time, `Death (r.file, size)) :: acc
          | Record.Truncate { old_size } ->
            (r.time, `Death (r.file, old_size)) :: acc
          | Record.Delete _ | Record.Open _ | Record.Close _
          | Record.Reposition _ | Record.Dir_read _ | Record.Shared_read _
          | Record.Shared_write _ ->
            acc)
        [] trace
      |> List.rev
    in
    List.sort (fun (a, _) (b, _) -> Float.compare a b) (accesses @ deaths)
  in
  let record_death ~now ~file ~size =
    match Ids.File.Tbl.find_opt states file with
    | None -> incr unknown
    | Some st ->
      incr aged;
      let age_oldest = now -. st.oldest and age_newest = now -. st.newest in
      Dfs_util.Cdf.add by_files ((age_oldest +. age_newest) /. 2.0);
      if size > 0 then begin
        (* sequential-write assumption: byte at fractional offset f was
           written at oldest + f * (newest - oldest) *)
        let w = float_of_int size /. float_of_int byte_samples in
        for i = 0 to byte_samples - 1 do
          let f = (float_of_int i +. 0.5) /. float_of_int byte_samples in
          let written = st.oldest +. (f *. (st.newest -. st.oldest)) in
          Dfs_util.Cdf.add by_bytes ~weight:w (now -. written)
        done
      end;
      Ids.File.Tbl.remove states file
  in
  List.iter
    (fun (time, ev) ->
      match ev with
      | `Write (a : Session.access) -> (
        let covered_whole =
          a.a_bytes_written >= a.a_size_close && a.a_size_close > 0
        in
        match Ids.File.Tbl.find_opt states a.a_file with
        | Some st ->
          if covered_whole then begin
            st.oldest <- a.a_open_time;
            st.newest <- a.a_close_time
          end
          else st.newest <- a.a_close_time
        | None ->
          Ids.File.Tbl.replace states a.a_file
            { oldest = a.a_open_time; newest = a.a_close_time })
      | `Death (file, size) -> record_death ~now:time ~file ~size)
    events;
  {
    by_files;
    by_bytes;
    deaths_aged = !aged;
    deaths_unknown = !unknown;
  }

let default_xs = Dfs_util.Cdf.log_xs ~lo:1.0 ~hi:10_000_000.0 ~per_decade:3

let fraction_files_under t secs = Dfs_util.Cdf.fraction_below t.by_files secs

let fraction_bytes_under t secs = Dfs_util.Cdf.fraction_below t.by_bytes secs
