module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids
module B = Dfs_trace.Record_batch

type t = {
  by_files : Dfs_util.Cdf.t;
  by_bytes : Dfs_util.Cdf.t;
  deaths_aged : int;
  deaths_unknown : int;
}

type write_state = { mutable oldest : float; mutable newest : float }

(* Number of interpolation points when spreading a dead file's bytes over
   the oldest..newest age range. *)
let byte_samples = 8

(* [writes] are write-bearing closes in close-time order, [deaths] the
   deletes/truncates in record order; the stable sort interleaves them by
   time with writes winning ties, exactly as the single-pass list
   construction always has. *)
let of_events ~writes ~deaths =
  let by_files = Dfs_util.Cdf.create () in
  let by_bytes = Dfs_util.Cdf.create () in
  let aged = ref 0 and unknown = ref 0 in
  let states : write_state Ids.File.Tbl.t = Ids.File.Tbl.create 1024 in
  let events =
    List.sort (fun (a, _) (b, _) -> Float.compare a b) (writes @ deaths)
  in
  let record_death ~now ~file ~size =
    match Ids.File.Tbl.find_opt states file with
    | None -> incr unknown
    | Some st ->
      incr aged;
      let age_oldest = now -. st.oldest and age_newest = now -. st.newest in
      Dfs_util.Cdf.add by_files ((age_oldest +. age_newest) /. 2.0);
      if size > 0 then begin
        (* sequential-write assumption: byte at fractional offset f was
           written at oldest + f * (newest - oldest) *)
        let w = float_of_int size /. float_of_int byte_samples in
        for i = 0 to byte_samples - 1 do
          let f = (float_of_int i +. 0.5) /. float_of_int byte_samples in
          let written = st.oldest +. (f *. (st.newest -. st.oldest)) in
          Dfs_util.Cdf.add by_bytes ~weight:w (now -. written)
        done
      end;
      Ids.File.Tbl.remove states file
  in
  List.iter
    (fun (time, ev) ->
      match ev with
      | `Write (a : Session.access) -> (
        let covered_whole =
          a.a_bytes_written >= a.a_size_close && a.a_size_close > 0
        in
        match Ids.File.Tbl.find_opt states a.a_file with
        | Some st ->
          if covered_whole then begin
            st.oldest <- a.a_open_time;
            st.newest <- a.a_close_time
          end
          else st.newest <- a.a_close_time
        | None ->
          Ids.File.Tbl.replace states a.a_file
            { oldest = a.a_open_time; newest = a.a_close_time })
      | `Death (file, size) -> record_death ~now:time ~file ~size)
    events;
  {
    by_files;
    by_bytes;
    deaths_aged = !aged;
    deaths_unknown = !unknown;
  }

type event = [ `Write of Session.access | `Death of Ids.File.t * int ]

type acc = {
  mutable writes_rev : (float * event) list;
  mutable deaths_rev : (float * event) list;
}

let acc_create () = { writes_rev = []; deaths_rev = [] }

let acc_access acc (a : Session.access) =
  if (not a.a_is_dir) && a.a_bytes_written > 0 then
    acc.writes_rev <- (a.a_close_time, `Write a) :: acc.writes_rev

(* The death a record contributes, if any: deletes of regular files and
   truncations. Shared with the sharded fused pass, which extracts
   deaths per shard and feeds them back through [acc_death] in global
   record order. *)
let death_of_record batch i =
  (* the tag read is bounds-checked and validates [i]; the remaining
     reads reuse the same index through the unsafe mirror *)
  let tag = B.tag batch i in
  if
    (tag = B.tag_delete && not (B.Unsafe.is_dir batch i))
    || tag = B.tag_truncate
  then
    Some (B.Unsafe.time batch i, B.Unsafe.file_id batch i, B.Unsafe.a batch i)
  else None

let acc_death acc ~time ~file ~size =
  acc.deaths_rev <- (time, `Death (file, size)) :: acc.deaths_rev

let acc_record acc batch i =
  match death_of_record batch i with
  | Some (time, file, size) -> acc_death acc ~time ~file ~size
  | None -> ()

let acc_finish acc =
  of_events ~writes:(List.rev acc.writes_rev) ~deaths:(List.rev acc.deaths_rev)

let analyze ?accesses trace =
  let batch = B.of_array trace in
  let acc = acc_create () in
  let accesses =
    match accesses with Some l -> l | None -> Session.of_batch batch
  in
  List.iter (acc_access acc) accesses;
  for i = 0 to B.length batch - 1 do
    acc_record acc batch i
  done;
  acc_finish acc

let default_xs = Dfs_util.Cdf.log_xs ~lo:1.0 ~hi:10_000_000.0 ~per_decade:3

let fraction_files_under t secs = Dfs_util.Cdf.fraction_below t.by_files secs

let fraction_bytes_under t secs = Dfs_util.Cdf.fraction_below t.by_bytes secs
