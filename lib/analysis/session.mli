(** Reconstruction of per-access information from a trace.

    The traces record positions at opens, closes and repositions — not
    individual reads and writes — so, exactly as in the BSD study and the
    paper, the byte ranges transferred are {e deduced}: every interval
    between two consecutive position-defining events is one sequential
    run.  An {e access} is one open-use-close episode of one file by one
    process. *)

type access = {
  a_user : Dfs_trace.Ids.User.t;
  a_client : Dfs_trace.Ids.Client.t;
  a_migrated : bool;
  a_file : Dfs_trace.Ids.File.t;
  a_is_dir : bool;
  a_mode : Dfs_trace.Record.open_mode;  (** the mode the file was opened in *)
  a_open_time : float;
  a_close_time : float;
  a_size_open : int;  (** file size at open *)
  a_size_close : int;  (** file size at close *)
  a_bytes_read : int;
  a_bytes_written : int;
  a_runs : int list;  (** sequential run lengths, in event order *)
  a_repositions : int;
}

type usage = Read_only | Write_only | Read_write
(** Actual usage during the access (not the open mode). *)

val usage : access -> usage option
(** [None] when the access transferred no bytes. *)

type sequentiality = Whole_file | Other_sequential | Random

val sequentiality : access -> sequentiality
(** Whole-file: the entire file was transferred in one run from start to
    finish; other-sequential: a single sequential run; random: anything
    else. *)

val bytes : access -> int

val duration : access -> float

val of_batch : Dfs_trace.Record_batch.t -> access list
(** Replay the trace and return completed accesses in close-time order.
    Opens with no matching close (trace cut off) are dropped, as are
    closes with no matching open. *)

val of_seq : Dfs_trace.Record_batch.t Seq.t -> access list
(** {!of_batch} over a chunked trace.  The open-handle table persists
    across batch boundaries, so a trace split into chunks yields exactly
    the accesses of the same records in one batch. *)

val of_trace : Dfs_trace.Record.t array -> access list
(** {!of_batch} on a boxed-record trace (converts first). *)

val sweep :
  Dfs_trace.Record_batch.t ->
  on_record:(Dfs_trace.Record_batch.t -> int -> unit) ->
  on_access:(access -> unit) ->
  unit
(** One pass over the batch: [on_record batch i] fires for every record
    index in order (for fused per-record folds), [on_access] for every
    completed access in close-time order — the same order {!of_batch}
    returns. *)

val sweep_seq :
  Dfs_trace.Record_batch.t Seq.t ->
  on_record:(Dfs_trace.Record_batch.t -> int -> unit) ->
  on_access:(access -> unit) ->
  unit
(** {!sweep} over a chunked trace; at most one chunk is forced at a
    time. *)

val sweep_shard_seq :
  Dfs_trace.Record_batch.t Seq.t ->
  shard:int ->
  nshards:int ->
  on_record:(gidx:int -> Dfs_trace.Record_batch.t -> int -> unit) ->
  on_access:(gidx:int -> access -> unit) ->
  unit
(** {!sweep_seq} restricted to records whose client id satisfies
    [client mod nshards = shard].  Handles are keyed by (client, pid,
    file), so each handle lives entirely in one shard and the union of
    all shards' callbacks is exactly the unsharded sweep's, partitioned
    by client.  [gidx] is the record's index across the whole sequence
    ([on_access] gets its close record's), so per-shard streams can be
    k-way merged back into the exact unsharded order.
    [sweep_shard_seq ~shard:0 ~nshards:1] visits everything. *)

val run_boundaries_batch :
  Dfs_trace.Record_batch.t -> f:(access -> float -> int -> unit) -> unit
(** Lower-level interface for interval analyses: invokes [f access time
    run_bytes] at each run boundary (reposition or close), attributing the
    run's bytes at the moment they are known.  [access] is the in-progress
    access (its totals may be incomplete at callback time). *)

val run_boundaries_seq :
  Dfs_trace.Record_batch.t Seq.t ->
  f:(access -> float -> int -> unit) ->
  unit
(** {!run_boundaries_batch} over a chunked trace. *)

val run_boundaries :
  Dfs_trace.Record.t array -> f:(access -> float -> int -> unit) -> unit
(** {!run_boundaries_batch} on a boxed-record trace. *)
