(** Table 10: frequency of cache-consistency actions, replayed from the
    trace (the same open-table logic the Sprite server runs live).

    - {e Concurrent write-sharing}: an open that results in the file being
      open on more than one client with at least one of them writing.
    - {e Server recall}: an open for which the file's most recent data was
      last written by a different client, so the server must retrieve it.
      Like the paper's figure this is an upper bound — the server does not
      know whether the delayed-write daemon already flushed the data. *)

type t = {
  file_opens : int;
  sharing_opens : int;
  recall_opens : int;
}

val analyze : Dfs_trace.Record_batch.t -> t

val analyze_seq : Dfs_trace.Record_batch.t Seq.t -> t
(** {!analyze} over a chunked trace; replay state persists across chunk
    boundaries. *)

val sharing_pct : t -> float

val recall_pct : t -> float
