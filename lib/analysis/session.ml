module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids
module B = Dfs_trace.Record_batch

type access = {
  a_user : Ids.User.t;
  a_client : Ids.Client.t;
  a_migrated : bool;
  a_file : Ids.File.t;
  a_is_dir : bool;
  a_mode : Record.open_mode;
  a_open_time : float;
  a_close_time : float;
  a_size_open : int;
  a_size_close : int;
  a_bytes_read : int;
  a_bytes_written : int;
  a_runs : int list;
  a_repositions : int;
}

type usage = Read_only | Write_only | Read_write

let usage a =
  match (a.a_bytes_read > 0, a.a_bytes_written > 0) with
  | true, false -> Some Read_only
  | false, true -> Some Write_only
  | true, true -> Some Read_write
  | false, false -> None

type sequentiality = Whole_file | Other_sequential | Random

let sequentiality a =
  match a.a_runs with
  | [] -> Other_sequential
  | [ run ] ->
    (* One sequential run; whole-file when it covered the file start to
       finish.  For reads the reference size is the size at open, for
       writes the size at close. *)
    let reference =
      if a.a_bytes_written > 0 then a.a_size_close else a.a_size_open
    in
    if a.a_repositions = 0 && run >= reference && reference > 0 then Whole_file
    else Other_sequential
  | _ :: _ :: _ -> Random

let bytes a = a.a_bytes_read + a.a_bytes_written

let duration a = a.a_close_time -. a.a_open_time

(* In-progress open handle. *)
type pending = {
  p_user : Ids.User.t;
  p_client : Ids.Client.t;
  p_migrated : bool;
  p_file : Ids.File.t;
  p_is_dir : bool;
  p_mode : Record.open_mode;
  p_open_time : float;
  p_size_open : int;
  mutable run_start : int;
  mutable runs_rev : int list;
  mutable repositions : int;
}

let finish (p : pending) close_time ~size ~bytes_read ~bytes_written =
  {
    a_user = p.p_user;
    a_client = p.p_client;
    a_migrated = p.p_migrated;
    a_file = p.p_file;
    a_is_dir = p.p_is_dir;
    a_mode = p.p_mode;
    a_open_time = p.p_open_time;
    a_close_time = close_time;
    a_size_open = p.p_size_open;
    a_size_close = size;
    a_bytes_read = bytes_read;
    a_bytes_written = bytes_written;
    a_runs = List.rev p.runs_rev;
    a_repositions = p.repositions;
  }

(* The scan walks the batch columns directly (unsafe accessors: the loop
   index is bounded by the batch length); the only allocations are one
   [pending] per open and the handle-table bookkeeping.  The handle
   table persists across batches, so a chunked trace scans identically
   to the same records in one contiguous batch.

   [shard]/[nshards] restrict the scan to records whose client id is
   congruent to [shard] — handles are keyed by (client, pid, file), so
   every record of a handle lands in the same shard and the union of the
   shards' callbacks over a trace is exactly the unsharded scan's,
   partitioned by client.  [on_record] and [on_close] receive the
   record's global index across the whole batch sequence so per-shard
   results can be merged back into trace order. *)
let scan_shard_seq batches ~shard ~nshards ~on_record ~on_boundary ~on_close =
  let open_tbl : (int * int * int, pending list) Hashtbl.t =
    Hashtbl.create 1024
  in
  let push key p =
    let l = Option.value ~default:[] (Hashtbl.find_opt open_tbl key) in
    Hashtbl.replace open_tbl key (p :: l)
  in
  let top key =
    match Hashtbl.find_opt open_tbl key with
    | Some (p :: _) -> Some p
    | Some [] | None -> None
  in
  let pop key =
    match Hashtbl.find_opt open_tbl key with
    | Some (p :: rest) ->
      if rest = [] then Hashtbl.remove open_tbl key
      else Hashtbl.replace open_tbl key rest;
      Some p
    | Some [] | None -> None
  in
  let base = ref 0 in
  Seq.iter
    (fun batch ->
      let handle_key i =
        (B.Unsafe.client batch i, B.Unsafe.pid batch i, B.Unsafe.file batch i)
      in
      let n = B.length batch in
      for i = 0 to n - 1 do
        if nshards = 1 || B.Unsafe.client batch i mod nshards = shard then begin
          let gidx = !base + i in
          on_record ~gidx batch i;
          let tag = B.Unsafe.tag batch i in
          if tag = B.tag_open then
            push (handle_key i)
              {
                p_user = B.Unsafe.user_id batch i;
                p_client = Ids.Client.of_int (B.Unsafe.client batch i);
                p_migrated = B.Unsafe.migrated batch i;
                p_file = B.Unsafe.file_id batch i;
                p_is_dir = B.Unsafe.is_dir batch i;
                p_mode = B.Unsafe.open_mode batch i;
                p_open_time = B.Unsafe.time batch i;
                p_size_open = B.Unsafe.a batch i;
                run_start = B.Unsafe.b batch i;
                runs_rev = [];
                repositions = 0;
              }
          else if tag = B.tag_reposition then begin
            match top (handle_key i) with
            | None -> ()
            | Some p ->
              let run = B.Unsafe.a batch i - p.run_start in
              if run > 0 then begin
                p.runs_rev <- run :: p.runs_rev;
                on_boundary p (B.Unsafe.time batch i) run
              end;
              p.run_start <- B.Unsafe.b batch i;
              p.repositions <- p.repositions + 1
          end
          else if tag = B.tag_close then begin
            match pop (handle_key i) with
            | None -> ()
            | Some p ->
              let run = B.Unsafe.b batch i - p.run_start in
              if run > 0 then begin
                p.runs_rev <- run :: p.runs_rev;
                on_boundary p (B.Unsafe.time batch i) run
              end;
              on_close ~gidx p (B.Unsafe.time batch i)
                ~size:(B.Unsafe.a batch i)
                ~bytes_read:(B.Unsafe.c batch i)
                ~bytes_written:(B.Unsafe.d batch i)
          end
        end
      done;
      base := !base + n)
    batches

let scan_seq batches ~on_record ~on_boundary ~on_close =
  scan_shard_seq batches ~shard:0 ~nshards:1
    ~on_record:(fun ~gidx:_ batch i -> on_record batch i)
    ~on_boundary
    ~on_close:(fun ~gidx:_ p time ~size ~bytes_read ~bytes_written ->
      on_close p time ~size ~bytes_read ~bytes_written)

let no_record _ _ = ()

let no_boundary _ _ _ = ()

let sweep_seq batches ~on_record ~on_access =
  scan_seq batches ~on_record ~on_boundary:no_boundary
    ~on_close:(fun p time ~size ~bytes_read ~bytes_written ->
      on_access (finish p time ~size ~bytes_read ~bytes_written))

let sweep_shard_seq batches ~shard ~nshards ~on_record ~on_access =
  scan_shard_seq batches ~shard ~nshards ~on_record ~on_boundary:no_boundary
    ~on_close:(fun ~gidx p time ~size ~bytes_read ~bytes_written ->
      on_access ~gidx (finish p time ~size ~bytes_read ~bytes_written))

let sweep batch ~on_record ~on_access =
  sweep_seq (Seq.return batch) ~on_record ~on_access

let of_seq batches =
  let acc = ref [] in
  sweep_seq batches ~on_record:no_record ~on_access:(fun a -> acc := a :: !acc);
  List.rev !acc

let of_batch batch = of_seq (Seq.return batch)

let run_boundaries_seq batches ~f =
  scan_seq batches ~on_record:no_record
    ~on_boundary:(fun p time run ->
      (* expose the in-progress access; totals are placeholders *)
      let partial =
        finish p time ~size:p.p_size_open ~bytes_read:0 ~bytes_written:0
      in
      f partial time run)
    ~on_close:(fun _ _ ~size:_ ~bytes_read:_ ~bytes_written:_ -> ())

let run_boundaries_batch batch ~f = run_boundaries_seq (Seq.return batch) ~f

let of_trace trace = of_batch (B.of_array trace)

let run_boundaries trace ~f = run_boundaries_batch (B.of_array trace) ~f
