module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids

type access = {
  a_user : Ids.User.t;
  a_client : Ids.Client.t;
  a_migrated : bool;
  a_file : Ids.File.t;
  a_is_dir : bool;
  a_mode : Record.open_mode;
  a_open_time : float;
  a_close_time : float;
  a_size_open : int;
  a_size_close : int;
  a_bytes_read : int;
  a_bytes_written : int;
  a_runs : int list;
  a_repositions : int;
}

type usage = Read_only | Write_only | Read_write

let usage a =
  match (a.a_bytes_read > 0, a.a_bytes_written > 0) with
  | true, false -> Some Read_only
  | false, true -> Some Write_only
  | true, true -> Some Read_write
  | false, false -> None

type sequentiality = Whole_file | Other_sequential | Random

let sequentiality a =
  match a.a_runs with
  | [] -> Other_sequential
  | [ run ] ->
    (* One sequential run; whole-file when it covered the file start to
       finish.  For reads the reference size is the size at open, for
       writes the size at close. *)
    let reference =
      if a.a_bytes_written > 0 then a.a_size_close else a.a_size_open
    in
    if a.a_repositions = 0 && run >= reference && reference > 0 then Whole_file
    else Other_sequential
  | _ :: _ :: _ -> Random

let bytes a = a.a_bytes_read + a.a_bytes_written

let duration a = a.a_close_time -. a.a_open_time

(* In-progress open handle. *)
type pending = {
  p_user : Ids.User.t;
  p_client : Ids.Client.t;
  p_migrated : bool;
  p_file : Ids.File.t;
  p_is_dir : bool;
  p_mode : Record.open_mode;
  p_open_time : float;
  p_size_open : int;
  mutable run_start : int;
  mutable runs_rev : int list;
  mutable repositions : int;
}

let handle_key (r : Record.t) =
  ( Ids.Client.to_int r.client,
    Ids.Process.to_int r.pid,
    Ids.File.to_int r.file )

let scan trace ~on_boundary ~on_close =
  let open_tbl : (int * int * int, pending list) Hashtbl.t =
    Hashtbl.create 1024
  in
  let push key p =
    let l = Option.value ~default:[] (Hashtbl.find_opt open_tbl key) in
    Hashtbl.replace open_tbl key (p :: l)
  in
  let top key =
    match Hashtbl.find_opt open_tbl key with
    | Some (p :: _) -> Some p
    | Some [] | None -> None
  in
  let pop key =
    match Hashtbl.find_opt open_tbl key with
    | Some (p :: rest) ->
      if rest = [] then Hashtbl.remove open_tbl key
      else Hashtbl.replace open_tbl key rest;
      Some p
    | Some [] | None -> None
  in
  Array.iter
    (fun (r : Record.t) ->
      match r.kind with
      | Record.Open { mode; created = _; is_dir; size; start_pos } ->
        push (handle_key r)
          {
            p_user = r.user;
            p_client = r.client;
            p_migrated = r.migrated;
            p_file = r.file;
            p_is_dir = is_dir;
            p_mode = mode;
            p_open_time = r.time;
            p_size_open = size;
            run_start = start_pos;
            runs_rev = [];
            repositions = 0;
          }
      | Record.Reposition { pos_before; pos_after } -> (
        match top (handle_key r) with
        | None -> ()
        | Some p ->
          let run = pos_before - p.run_start in
          if run > 0 then begin
            p.runs_rev <- run :: p.runs_rev;
            on_boundary p r.time run
          end;
          p.run_start <- pos_after;
          p.repositions <- p.repositions + 1)
      | Record.Close { size; final_pos; bytes_read; bytes_written } -> (
        match pop (handle_key r) with
        | None -> ()
        | Some p ->
          let run = final_pos - p.run_start in
          if run > 0 then begin
            p.runs_rev <- run :: p.runs_rev;
            on_boundary p r.time run
          end;
          on_close p r.time ~size ~bytes_read ~bytes_written)
      | Record.Delete _ | Record.Truncate _ | Record.Dir_read _
      | Record.Shared_read _ | Record.Shared_write _ ->
        ())
    trace

let finish (p : pending) close_time ~size ~bytes_read ~bytes_written =
  {
    a_user = p.p_user;
    a_client = p.p_client;
    a_migrated = p.p_migrated;
    a_file = p.p_file;
    a_is_dir = p.p_is_dir;
    a_mode = p.p_mode;
    a_open_time = p.p_open_time;
    a_close_time = close_time;
    a_size_open = p.p_size_open;
    a_size_close = size;
    a_bytes_read = bytes_read;
    a_bytes_written = bytes_written;
    a_runs = List.rev p.runs_rev;
    a_repositions = p.repositions;
  }

let of_trace trace =
  let acc = ref [] in
  scan trace
    ~on_boundary:(fun _ _ _ -> ())
    ~on_close:(fun p time ~size ~bytes_read ~bytes_written ->
      acc := finish p time ~size ~bytes_read ~bytes_written :: !acc);
  List.rev !acc

let run_boundaries trace ~f =
  scan trace
    ~on_boundary:(fun p time run ->
      (* expose the in-progress access; totals are placeholders *)
      let partial =
        finish p time ~size:p.p_size_open ~bytes_read:0 ~bytes_written:0
      in
      f partial time run)
    ~on_close:(fun _ _ ~size:_ ~bytes_read:_ ~bytes_written:_ -> ())
