(** The client virtual-memory model (Section 5.3 of the paper).

    Sprite divides each process's pages into four groups:

    - {e code} pages, read-only, paged from the executable file — and kept
      in memory after the process exits so re-invocations of the same
      program fault them back without traffic;
    - {e initialized data} pages, paged from the executable through the
      client file cache (copied into VM on first touch);
    - {e modified data} and {e stack} pages, paged to and from per-process
      backing files, which are ordinary files on the server but are never
      cached on the client.

    The model tracks page counts and ages rather than page contents, and
    reports its current page demand so the machine's memory arbiter can
    trade pages with the file cache (the VM system receives preference; a
    VM page must sit unreferenced for 20 minutes before it may be handed
    to the file cache). *)

type io = {
  cached_page_read : file:Dfs_trace.Ids.File.t -> off:int -> len:int -> unit;
      (** code/initialized-data fault serviced through the client file
          cache (Class_paging traffic) *)
  backing_read : bytes:int -> unit;
      (** uncacheable page-in from a backing file *)
  backing_write : bytes:int -> unit;
      (** uncacheable page-out to a backing file *)
}

type config = {
  page_size : int;
  code_retention : float;
      (** seconds an exited program's code pages stay resident before they
          become reclaimable (the paper: "many minutes") *)
  vm_trade_idle : float;
      (** seconds a VM page must be unreferenced before it can be given to
          the file cache; Sprite uses 20 minutes *)
}

val default_config : config

type t

val create : ?config:config -> io -> t

val config : t -> config

(** {1 Process lifecycle} *)

val exec :
  t ->
  now:float ->
  pid:Dfs_trace.Ids.Process.t ->
  exe:Dfs_trace.Ids.File.t ->
  code_bytes:int ->
  data_bytes:int ->
  unit
(** Start a process: fault in code pages (free if the executable's pages
    are still retained from a previous run, otherwise read through the
    file cache) and initialized data pages (always read through the file
    cache — clean copies live there when the program ran recently). *)

val grow :
  t -> now:float -> pid:Dfs_trace.Ids.Process.t -> heap_bytes:int -> unit
(** The process dirtied more data/stack pages (no traffic until they are
    swapped or the process exits). *)

val swap_out :
  t -> now:float -> pid:Dfs_trace.Ids.Process.t -> fraction:float -> unit
(** Write the given fraction of the process's dirty pages to its backing
    file — deactivation, memory pressure, or migration eviction. *)

val swap_in :
  t -> now:float -> pid:Dfs_trace.Ids.Process.t -> fraction:float -> unit
(** Fault swapped pages back from the backing file. *)

val exit :
  t -> now:float -> pid:Dfs_trace.Ids.Process.t -> unit
(** Dirty pages are discarded (they never reach the server); code pages
    move to the retained pool keyed by executable. *)

(** {1 Memory arbitration} *)

val demand_pages : t -> now:float -> int
(** Pages the VM system currently claims: working sets of live processes
    plus retained code pages that are not yet old enough (per
    [vm_trade_idle]) to be traded to the file cache. *)

val reclaim_retained : t -> now:float -> max_pages:int -> int
(** Drop up to [max_pages] of the oldest reclaimable retained code pages;
    returns the number actually freed. *)

val live_processes : t -> int

val processes : t -> (Dfs_trace.Ids.Process.t * int) list
(** Live processes with their resident page counts (largest first); used
    by the memory arbiter to pick swap victims under pressure. *)

val retained_pages : t -> int

val drop_state : t -> unit
(** Release the process table and retained-code map once the simulation
    is over; the VM must see no further activity afterwards. *)
