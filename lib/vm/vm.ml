module File = Dfs_trace.Ids.File
module Process = Dfs_trace.Ids.Process

type io = {
  cached_page_read : file:File.t -> off:int -> len:int -> unit;
  backing_read : bytes:int -> unit;
  backing_write : bytes:int -> unit;
}

type config = {
  page_size : int;
  code_retention : float;
  vm_trade_idle : float;
}

let default_config =
  {
    page_size = Dfs_util.Units.block_size;
    code_retention = 1500.0;
    vm_trade_idle = 1200.0;
  }

type proc = {
  exe : File.t;
  code_pages : int;
  data_pages : int;  (* initialized data *)
  mutable heap_pages : int;  (* modified data + stack *)
  mutable swapped_pages : int;  (* heap pages currently on the backing file *)
}

type retained = { mutable pages : int; mutable last_used : float }

type t = {
  cfg : config;
  io : io;
  procs : proc Process.Tbl.t;
  retained : retained File.Tbl.t;  (* code pages of exited programs *)
}

let create ?(config = default_config) io =
  { cfg = config; io; procs = Process.Tbl.create 64; retained = File.Tbl.create 64 }

let config t = t.cfg

let pages_of_bytes t bytes =
  if bytes <= 0 then 0 else (bytes + t.cfg.page_size - 1) / t.cfg.page_size

let exec t ~now ~pid ~exe ~code_bytes ~data_bytes =
  let code_pages = pages_of_bytes t code_bytes in
  let data_pages = pages_of_bytes t data_bytes in
  (* Code: free when retained from a previous run; otherwise each page is
     a fault through the file cache on the executable. *)
  let retained_pages =
    match File.Tbl.find_opt t.retained exe with
    | Some r when now -. r.last_used <= t.cfg.code_retention ->
      r.last_used <- now;
      min r.pages code_pages
    | _ -> 0
  in
  let faulted = code_pages - retained_pages in
  if faulted > 0 then
    t.io.cached_page_read ~file:exe ~off:(retained_pages * t.cfg.page_size)
      ~len:(faulted * t.cfg.page_size);
  (* Initialized data is always (re)copied from the file cache: processes
     dirty their data pages, so exited copies were discarded. *)
  if data_pages > 0 then
    t.io.cached_page_read ~file:exe ~off:code_bytes
      ~len:(data_pages * t.cfg.page_size);
  Process.Tbl.replace t.procs pid
    { exe; code_pages; data_pages; heap_pages = 0; swapped_pages = 0 }

let find t pid = Process.Tbl.find_opt t.procs pid

let grow t ~now ~pid ~heap_bytes =
  ignore now;
  match find t pid with
  | None -> ()
  | Some p -> p.heap_pages <- p.heap_pages + pages_of_bytes t heap_bytes

let dirty_pages p = p.data_pages + p.heap_pages - p.swapped_pages

let swap_out t ~now ~pid ~fraction =
  ignore now;
  match find t pid with
  | None -> ()
  | Some p ->
    let candidates = max 0 (dirty_pages p) in
    let n = int_of_float (Float.round (float_of_int candidates *. fraction)) in
    let n = min candidates n in
    if n > 0 then begin
      t.io.backing_write ~bytes:(n * t.cfg.page_size);
      p.swapped_pages <- p.swapped_pages + n
    end

let swap_in t ~now ~pid ~fraction =
  ignore now;
  match find t pid with
  | None -> ()
  | Some p ->
    let n =
      min p.swapped_pages
        (int_of_float (Float.round (float_of_int p.swapped_pages *. fraction)))
    in
    if n > 0 then begin
      t.io.backing_read ~bytes:(n * t.cfg.page_size);
      p.swapped_pages <- p.swapped_pages - n
    end

let exit t ~now ~pid =
  match find t pid with
  | None -> ()
  | Some p ->
    Process.Tbl.remove t.procs pid;
    (* Dirty data/stack pages are discarded; code pages join the retained
       pool so a re-run of the same program faults them back for free. *)
    (match File.Tbl.find_opt t.retained p.exe with
    | Some r ->
      r.pages <- max r.pages p.code_pages;
      r.last_used <- now
    | None ->
      File.Tbl.replace t.retained p.exe
        { pages = p.code_pages; last_used = now })

let demand_pages t ~now =
  let live =
    Process.Tbl.fold
      (fun _ p acc ->
        acc + p.code_pages + p.data_pages + p.heap_pages - p.swapped_pages)
      t.procs 0
  in
  let retained =
    File.Tbl.fold
      (fun _ r acc ->
        (* Retained pages still idle less than the trade threshold are
           claimed by VM; older ones are up for grabs by the file cache. *)
        if now -. r.last_used <= t.cfg.vm_trade_idle then acc + r.pages
        else acc)
      t.retained 0
  in
  live + retained

let reclaim_retained t ~now ~max_pages =
  let reclaimable =
    File.Tbl.fold
      (fun file r acc ->
        if now -. r.last_used > t.cfg.vm_trade_idle then (file, r) :: acc
        else acc)
      t.retained []
    |> List.sort (fun (_, a) (_, b) -> Float.compare a.last_used b.last_used)
  in
  let freed = ref 0 in
  List.iter
    (fun (file, r) ->
      if !freed < max_pages then begin
        let take = min r.pages (max_pages - !freed) in
        r.pages <- r.pages - take;
        freed := !freed + take;
        if r.pages = 0 then File.Tbl.remove t.retained file
      end)
    reclaimable;
  !freed

let live_processes t = Process.Tbl.length t.procs

let processes t =
  Process.Tbl.fold
    (fun pid p acc ->
      let resident =
        p.code_pages + p.data_pages + p.heap_pages - p.swapped_pages
      in
      (pid, resident) :: acc)
    t.procs []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let retained_pages t =
  File.Tbl.fold (fun _ r acc -> acc + r.pages) t.retained 0

(* Post-simulation memory release: forget the process table and the
   retained-code-page map.  No further exec/page activity may follow. *)
let drop_state t =
  Process.Tbl.reset t.procs;
  File.Tbl.reset t.retained
