(* Tests for Dfs_vm.Vm: exec faults, code retention, swap traffic, memory
   demand and the 20-minute trade rule. *)

module Vm = Dfs_vm.Vm
module File = Dfs_trace.Ids.File
module Process = Dfs_trace.Ids.Process

let page = Dfs_util.Units.block_size

type log = {
  mutable cached_reads : (int * int * int) list;  (* file, off, len *)
  mutable backing_reads : int;
  mutable backing_writes : int;
}

let make_vm () =
  let log = { cached_reads = []; backing_reads = 0; backing_writes = 0 } in
  let vm =
    Vm.create
      {
        Vm.cached_page_read =
          (fun ~file ~off ~len ->
            log.cached_reads <- (File.to_int file, off, len) :: log.cached_reads);
        backing_read = (fun ~bytes -> log.backing_reads <- log.backing_reads + bytes);
        backing_write =
          (fun ~bytes -> log.backing_writes <- log.backing_writes + bytes);
      }
  in
  (vm, log)

let pid i = Process.of_int i

let exe i = File.of_int i

let test_exec_faults_code_and_data () =
  let vm, log = make_vm () in
  Vm.exec vm ~now:0.0 ~pid:(pid 1) ~exe:(exe 10) ~code_bytes:(4 * page)
    ~data_bytes:(2 * page);
  (* one read for code pages, one for initialized data *)
  Alcotest.(check int) "two fault batches" 2 (List.length log.cached_reads);
  let total = List.fold_left (fun acc (_, _, l) -> acc + l) 0 log.cached_reads in
  Alcotest.(check int) "all pages faulted" (6 * page) total

let test_code_retention () =
  let vm, log = make_vm () in
  Vm.exec vm ~now:0.0 ~pid:(pid 1) ~exe:(exe 10) ~code_bytes:(4 * page)
    ~data_bytes:page;
  Vm.exit vm ~now:1.0 ~pid:(pid 1);
  Alcotest.(check int) "code retained" 4 (Vm.retained_pages vm);
  log.cached_reads <- [];
  (* re-exec shortly after: code pages come from the retained pool, data is
     re-read through the file cache *)
  Vm.exec vm ~now:2.0 ~pid:(pid 2) ~exe:(exe 10) ~code_bytes:(4 * page)
    ~data_bytes:page;
  let total = List.fold_left (fun acc (_, _, l) -> acc + l) 0 log.cached_reads in
  Alcotest.(check int) "only data faults" page total

let test_code_retention_expires () =
  let vm, log = make_vm () in
  Vm.exec vm ~now:0.0 ~pid:(pid 1) ~exe:(exe 10) ~code_bytes:(2 * page)
    ~data_bytes:0;
  Vm.exit vm ~now:1.0 ~pid:(pid 1);
  log.cached_reads <- [];
  let long_after = 1.0 +. (Vm.config vm).Vm.code_retention +. 10.0 in
  Vm.exec vm ~now:long_after ~pid:(pid 2) ~exe:(exe 10) ~code_bytes:(2 * page)
    ~data_bytes:0;
  let total = List.fold_left (fun acc (_, _, l) -> acc + l) 0 log.cached_reads in
  Alcotest.(check int) "code refaulted after expiry" (2 * page) total

let test_swap_out_in () =
  let vm, log = make_vm () in
  Vm.exec vm ~now:0.0 ~pid:(pid 1) ~exe:(exe 10) ~code_bytes:page
    ~data_bytes:(2 * page);
  Vm.grow vm ~now:0.0 ~pid:(pid 1) ~heap_bytes:(8 * page);
  (* 10 dirty pages (2 data + 8 heap); swap half out *)
  Vm.swap_out vm ~now:1.0 ~pid:(pid 1) ~fraction:0.5;
  Alcotest.(check int) "5 pages written" (5 * page) log.backing_writes;
  Vm.swap_in vm ~now:2.0 ~pid:(pid 1) ~fraction:1.0;
  Alcotest.(check int) "5 pages read back" (5 * page) log.backing_reads

let test_swap_bounded () =
  let vm, log = make_vm () in
  Vm.exec vm ~now:0.0 ~pid:(pid 1) ~exe:(exe 10) ~code_bytes:page ~data_bytes:page;
  Vm.swap_out vm ~now:1.0 ~pid:(pid 1) ~fraction:1.0;
  Vm.swap_out vm ~now:2.0 ~pid:(pid 1) ~fraction:1.0;
  Alcotest.(check int) "cannot swap more than dirty" page log.backing_writes;
  Vm.swap_in vm ~now:3.0 ~pid:(pid 1) ~fraction:1.0;
  Vm.swap_in vm ~now:4.0 ~pid:(pid 1) ~fraction:1.0;
  Alcotest.(check int) "cannot swap in twice" page log.backing_reads

let test_unknown_pid_ignored () =
  let vm, log = make_vm () in
  Vm.grow vm ~now:0.0 ~pid:(pid 99) ~heap_bytes:page;
  Vm.swap_out vm ~now:0.0 ~pid:(pid 99) ~fraction:1.0;
  Vm.exit vm ~now:0.0 ~pid:(pid 99);
  Alcotest.(check int) "no traffic" 0 (log.backing_writes + log.backing_reads)

let test_demand_pages () =
  let vm, _ = make_vm () in
  Vm.exec vm ~now:0.0 ~pid:(pid 1) ~exe:(exe 10) ~code_bytes:(3 * page)
    ~data_bytes:(2 * page);
  Vm.grow vm ~now:0.0 ~pid:(pid 1) ~heap_bytes:(5 * page);
  Alcotest.(check int) "live demand" 10 (Vm.demand_pages vm ~now:0.0);
  Vm.swap_out vm ~now:1.0 ~pid:(pid 1) ~fraction:1.0;
  (* 7 dirty pages went to backing; resident = 3 code *)
  Alcotest.(check int) "demand after swap" 3 (Vm.demand_pages vm ~now:1.0)

let test_demand_includes_fresh_retained () =
  let vm, _ = make_vm () in
  Vm.exec vm ~now:0.0 ~pid:(pid 1) ~exe:(exe 10) ~code_bytes:(4 * page)
    ~data_bytes:0;
  Vm.exit vm ~now:1.0 ~pid:(pid 1);
  Alcotest.(check int) "retained counted while fresh" 4
    (Vm.demand_pages vm ~now:2.0);
  let idle = (Vm.config vm).Vm.vm_trade_idle in
  Alcotest.(check int) "retained released after trade window" 0
    (Vm.demand_pages vm ~now:(2.0 +. idle +. 60.0))

let test_reclaim_retained () =
  let vm, _ = make_vm () in
  Vm.exec vm ~now:0.0 ~pid:(pid 1) ~exe:(exe 10) ~code_bytes:(4 * page)
    ~data_bytes:0;
  Vm.exit vm ~now:0.0 ~pid:(pid 1);
  let idle = (Vm.config vm).Vm.vm_trade_idle in
  let later = idle +. 100.0 in
  Alcotest.(check int) "nothing reclaimable early" 0
    (Vm.reclaim_retained vm ~now:10.0 ~max_pages:10);
  Alcotest.(check int) "reclaims up to bound" 3
    (Vm.reclaim_retained vm ~now:later ~max_pages:3);
  Alcotest.(check int) "remaining page" 1 (Vm.retained_pages vm)

let test_processes_listing () =
  let vm, _ = make_vm () in
  Vm.exec vm ~now:0.0 ~pid:(pid 1) ~exe:(exe 10) ~code_bytes:page ~data_bytes:0;
  Vm.exec vm ~now:0.0 ~pid:(pid 2) ~exe:(exe 11) ~code_bytes:(5 * page)
    ~data_bytes:0;
  (match Vm.processes vm with
  | (p, pages) :: _ ->
    Alcotest.(check int) "largest first" 2 (Process.to_int p);
    Alcotest.(check int) "its pages" 5 pages
  | [] -> Alcotest.fail "expected processes");
  Alcotest.(check int) "live count" 2 (Vm.live_processes vm)

let prop_demand_never_negative =
  QCheck.Test.make ~name:"vm demand never negative" ~count:100
    QCheck.(list_of_size Gen.(0 -- 40) (pair (int_bound 4) (int_bound 5)))
    (fun ops ->
      let vm, _ = make_vm () in
      let now = ref 0.0 in
      List.iter
        (fun (p, op) ->
          now := !now +. 1.0;
          let p = pid p in
          match op with
          | 0 ->
            Vm.exec vm ~now:!now ~pid:p ~exe:(exe 1) ~code_bytes:page
              ~data_bytes:page
          | 1 -> Vm.grow vm ~now:!now ~pid:p ~heap_bytes:(2 * page)
          | 2 -> Vm.swap_out vm ~now:!now ~pid:p ~fraction:0.7
          | 3 -> Vm.swap_in vm ~now:!now ~pid:p ~fraction:0.7
          | _ -> Vm.exit vm ~now:!now ~pid:p)
        ops;
      Vm.demand_pages vm ~now:!now >= 0)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_demand_never_negative ]

let suite =
  [
    ("exec faults code and data", `Quick, test_exec_faults_code_and_data);
    ("code retention", `Quick, test_code_retention);
    ("code retention expires", `Quick, test_code_retention_expires);
    ("swap out/in", `Quick, test_swap_out_in);
    ("swap bounded", `Quick, test_swap_bounded);
    ("unknown pid ignored", `Quick, test_unknown_pid_ignored);
    ("demand pages", `Quick, test_demand_pages);
    ("demand includes fresh retained", `Quick, test_demand_includes_fresh_retained);
    ("reclaim retained", `Quick, test_reclaim_retained);
    ("processes listing", `Quick, test_processes_listing);
  ]
  @ qcheck_tests
