test/test_workload.ml: Alcotest Apps Array Dfs_analysis Dfs_sim Dfs_trace Dfs_util Dfs_workload Driver List Migration Namespace Params Presets
