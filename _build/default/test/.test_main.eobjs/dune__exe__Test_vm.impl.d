test/test_vm.ml: Alcotest Dfs_trace Dfs_util Dfs_vm Gen List QCheck QCheck_alcotest
