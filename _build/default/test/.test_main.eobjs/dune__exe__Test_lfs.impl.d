test/test_lfs.ml: Alcotest Dfs_analysis Dfs_lfs Dfs_trace Dfs_util List
