test/test_sim.ml: Alcotest Array Client Counters Cred Dfs_cache Dfs_sim Dfs_trace Dfs_util Disk Engine Fs_state List Network Server Traffic
