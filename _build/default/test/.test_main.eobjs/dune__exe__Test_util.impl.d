test/test_util.ml: Alcotest Array Cdf Chart Dfs_util Dist Float Fun Gen Hashtbl Heap Int List Lru QCheck QCheck_alcotest Rng Stats String Table Units
