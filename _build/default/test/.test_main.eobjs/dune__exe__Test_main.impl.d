test/test_main.ml: Alcotest Test_analysis Test_cache Test_consistency Test_integration Test_lfs Test_sim Test_trace Test_util Test_vm Test_workload
