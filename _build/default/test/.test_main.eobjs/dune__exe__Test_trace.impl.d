test/test_trace.ml: Alcotest Buffer Codec Dfs_trace Filename Filter Float Fun Gen Ids List Merge QCheck QCheck_alcotest Reader Record String Sys Writer
