test/test_integration.ml: Alcotest Array Dfs_analysis Dfs_cache Dfs_core Dfs_sim Dfs_trace Dfs_workload Filename Float Fun Lazy List Option Printf String Sys
