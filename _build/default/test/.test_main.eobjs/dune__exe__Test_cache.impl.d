test/test_cache.ml: Alcotest Dfs_cache Dfs_trace Dfs_util Gen List QCheck QCheck_alcotest
