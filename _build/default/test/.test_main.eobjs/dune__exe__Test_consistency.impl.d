test/test_consistency.ml: Alcotest Dfs_consistency Dfs_trace Dfs_util Fun List Overhead Polling Shared_events Sprite Sprite_modified Token
