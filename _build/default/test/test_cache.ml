(* Tests for Dfs_cache.Block_cache: hit/miss accounting, write fetches,
   delayed writes, fsync, recall, invalidation, capacity negotiation. *)

module Bc = Dfs_cache.Block_cache
module File = Dfs_trace.Ids.File

let bs = Dfs_util.Units.block_size

type backend_log = {
  mutable fetches : (int * int * int) list;  (* file, index, bytes; newest first *)
  mutable writebacks : (int * int * int * Bc.clean_reason) list;
}

let make_cache ?(capacity = 64) ?(min_capacity = 1) ?(delay = 30.0) () =
  let log = { fetches = []; writebacks = [] } in
  let cache =
    Bc.create
      ~config:
        {
          Bc.block_size = bs;
          writeback_delay = delay;
          capacity_blocks = capacity;
          min_capacity_blocks = min_capacity;
        }
      {
        Bc.fetch =
          (fun ~cls:_ ~file ~index ~bytes ->
            log.fetches <- (File.to_int file, index, bytes) :: log.fetches);
        writeback =
          (fun ~file ~index ~bytes ~reason ->
            log.writebacks <-
              (File.to_int file, index, bytes, reason) :: log.writebacks);
      }
  in
  (cache, log)

let f id = File.of_int id

let read ?(now = 0.0) ?(migrated = false) cache ~file ~size ~off ~len =
  Bc.read cache ~now ~cls:Bc.Class_file ~migrated ~file:(f file)
    ~file_size:size ~off ~len

let write ?(now = 0.0) ?(migrated = false) cache ~file ~size ~off ~len =
  Bc.write cache ~now ~cls:Bc.Class_file ~migrated ~file:(f file)
    ~file_size:size ~off ~len

(* -- reads -------------------------------------------------------------------- *)

let test_cold_read_fetches () =
  let cache, log = make_cache () in
  read cache ~file:1 ~size:bs ~off:0 ~len:bs;
  Alcotest.(check int) "one fetch" 1 (List.length log.fetches);
  let s = (Bc.stats cache).all in
  Alcotest.(check int) "one read op" 1 s.read_ops;
  Alcotest.(check int) "one miss" 1 s.read_misses;
  Alcotest.(check int) "no hit" 0 s.read_hits;
  Alcotest.(check int) "bytes read" bs s.bytes_read;
  Alcotest.(check int) "bytes fetched" bs s.bytes_fetched

let test_warm_read_hits () =
  let cache, log = make_cache () in
  read cache ~file:1 ~size:bs ~off:0 ~len:bs;
  read cache ~file:1 ~size:bs ~off:0 ~len:bs;
  Alcotest.(check int) "still one fetch" 1 (List.length log.fetches);
  let s = (Bc.stats cache).all in
  Alcotest.(check int) "one hit" 1 s.read_hits;
  Alcotest.(check int) "one miss" 1 s.read_misses

let test_read_spanning_blocks () =
  let cache, log = make_cache () in
  read cache ~file:1 ~size:(3 * bs) ~off:0 ~len:(3 * bs);
  Alcotest.(check int) "three fetches" 3 (List.length log.fetches);
  Alcotest.(check int) "three resident blocks" 3 (Bc.size cache)

let test_read_partial_tail_fetch () =
  let cache, log = make_cache () in
  (* file is 100 bytes: fetching its block transfers only 100 bytes *)
  read cache ~file:1 ~size:100 ~off:0 ~len:100;
  (match log.fetches with
  | [ (_, 0, bytes) ] -> Alcotest.(check int) "partial fetch" 100 bytes
  | _ -> Alcotest.fail "expected one fetch of block 0");
  Alcotest.(check int) "bytes fetched stat" 100
    (Bc.stats cache).all.bytes_fetched

let test_read_offset_within_block () =
  let cache, _ = make_cache () in
  read cache ~file:1 ~size:(2 * bs) ~off:(bs / 2) ~len:bs;
  let s = (Bc.stats cache).all in
  (* spans blocks 0 and 1 *)
  Alcotest.(check int) "two block ops" 2 s.read_ops;
  Alcotest.(check int) "app bytes" bs s.bytes_read

let test_migrated_class_accounting () =
  let cache, _ = make_cache () in
  read ~migrated:true cache ~file:1 ~size:bs ~off:0 ~len:bs;
  read ~migrated:false cache ~file:2 ~size:bs ~off:0 ~len:bs;
  let s = Bc.stats cache in
  Alcotest.(check int) "migrated ops" 1 s.migrated.read_ops;
  Alcotest.(check int) "all ops" 2 s.all.read_ops;
  Alcotest.(check int) "file class ops" 2 s.file.read_ops;
  Alcotest.(check int) "paging untouched" 0 s.paging.read_ops

let test_paging_class_accounting () =
  let cache, _ = make_cache () in
  Bc.read cache ~now:0.0 ~cls:Bc.Class_paging ~migrated:false ~file:(f 1)
    ~file_size:bs ~off:0 ~len:bs;
  let s = Bc.stats cache in
  Alcotest.(check int) "paging ops" 1 s.paging.read_ops;
  Alcotest.(check int) "file class untouched" 0 s.file.read_ops

(* -- writes ------------------------------------------------------------------- *)

let test_write_dirties () =
  let cache, log = make_cache () in
  write cache ~file:1 ~size:0 ~off:0 ~len:bs;
  Alcotest.(check int) "dirty blocks" 1 (Bc.dirty_blocks cache);
  Alcotest.(check int) "no writeback yet" 0 (List.length log.writebacks);
  Alcotest.(check int) "no fetch for a fresh full block" 0
    (List.length log.fetches)

let test_append_no_write_fetch () =
  let cache, log = make_cache () in
  (* appending past EOF must not fetch anything *)
  write cache ~file:1 ~size:0 ~off:0 ~len:100;
  write cache ~file:1 ~size:100 ~off:100 ~len:100;
  Alcotest.(check int) "no fetches" 0 (List.length log.fetches);
  Alcotest.(check int) "no write fetches" 0 (Bc.stats cache).all.write_fetches

let test_partial_write_nonresident_fetches () =
  let cache, log = make_cache () in
  (* file already has 2 blocks of data on the server; we overwrite a few
     bytes in the middle of block 1 without having it cached *)
  write cache ~file:1 ~size:(2 * bs) ~off:(bs + 10) ~len:50;
  Alcotest.(check int) "one write fetch" 1 (Bc.stats cache).all.write_fetches;
  Alcotest.(check int) "fetched the block" 1 (List.length log.fetches);
  Alcotest.(check int) "write fetch bytes" bs
    (Bc.stats cache).all.write_fetch_bytes

let test_partial_write_resident_no_fetch () =
  let cache, log = make_cache () in
  read cache ~file:1 ~size:(2 * bs) ~off:bs ~len:bs;
  log.fetches <- [];
  write cache ~file:1 ~size:(2 * bs) ~off:(bs + 10) ~len:50;
  Alcotest.(check int) "no fetch when resident" 0 (List.length log.fetches);
  Alcotest.(check int) "no write fetch" 0 (Bc.stats cache).all.write_fetches

let test_full_block_overwrite_no_fetch () =
  let cache, log = make_cache () in
  write cache ~file:1 ~size:(2 * bs) ~off:bs ~len:bs;
  Alcotest.(check int) "full-block overwrite needs no fetch" 0
    (List.length log.fetches)

(* -- delayed write ------------------------------------------------------------- *)

let test_delayed_writeback_after_30s () =
  let cache, log = make_cache () in
  write ~now:0.0 cache ~file:1 ~size:0 ~off:0 ~len:bs;
  Bc.tick cache ~now:10.0;
  Alcotest.(check int) "too early" 0 (List.length log.writebacks);
  Bc.tick cache ~now:30.0;
  Alcotest.(check int) "flushed at 30s" 1 (List.length log.writebacks);
  (match log.writebacks with
  | [ (_, _, bytes, reason) ] ->
    Alcotest.(check int) "whole dirty extent" bs bytes;
    Alcotest.(check bool) "reason delay" true (reason = Bc.Clean_delay)
  | _ -> Alcotest.fail "one writeback expected");
  Alcotest.(check int) "clean now" 0 (Bc.dirty_blocks cache);
  Bc.tick cache ~now:60.0;
  Alcotest.(check int) "no double flush" 1 (List.length log.writebacks)

let test_delayed_write_flushes_whole_file () =
  let cache, log = make_cache () in
  write ~now:0.0 cache ~file:1 ~size:0 ~off:0 ~len:bs;
  (* second block dirtied much later; Sprite flushes ALL dirty blocks of a
     file once any of them expires *)
  write ~now:25.0 cache ~file:1 ~size:bs ~off:bs ~len:bs;
  Bc.tick cache ~now:31.0;
  Alcotest.(check int) "both blocks flushed" 2 (List.length log.writebacks)

let test_writeback_extent_append () =
  let cache, log = make_cache () in
  (* append 100 bytes at offset 300 of a fresh block: the writeback covers
     block start through the end of the appended data *)
  write ~now:0.0 cache ~file:1 ~size:300 ~off:300 ~len:100;
  Bc.fsync cache ~now:1.0 ~file:(f 1);
  (match log.writebacks with
  | [ (_, 0, bytes, _) ] -> Alcotest.(check int) "head-to-high-water" 400 bytes
  | _ -> Alcotest.fail "single writeback expected");
  Alcotest.(check int) "writeback_bytes stat" 400
    (Bc.stats cache).writeback_bytes

let test_fsync_reason () =
  let cache, log = make_cache () in
  write cache ~file:1 ~size:0 ~off:0 ~len:10;
  Bc.fsync cache ~now:1.0 ~file:(f 1);
  (match log.writebacks with
  | [ (_, _, _, reason) ] ->
    Alcotest.(check bool) "fsync reason" true (reason = Bc.Clean_fsync)
  | _ -> Alcotest.fail "one writeback");
  Alcotest.(check int) "fsync leaves block resident" 1 (Bc.size cache)

let test_recall_reason_and_residency () =
  let cache, log = make_cache () in
  write cache ~file:1 ~size:0 ~off:0 ~len:10;
  Bc.recall cache ~now:2.0 ~file:(f 1);
  (match log.writebacks with
  | [ (_, _, _, reason) ] ->
    Alcotest.(check bool) "recall reason" true (reason = Bc.Clean_recall)
  | _ -> Alcotest.fail "one writeback");
  Alcotest.(check int) "block stays" 1 (Bc.size cache);
  Alcotest.(check int) "clean" 0 (Bc.dirty_blocks cache)

let test_delete_discards_dirty () =
  let cache, log = make_cache () in
  write cache ~file:1 ~size:0 ~off:0 ~len:1000;
  Bc.delete cache ~now:1.0 ~file:(f 1);
  Alcotest.(check int) "nothing written back" 0 (List.length log.writebacks);
  Alcotest.(check int) "discarded bytes recorded" 1000
    (Bc.stats cache).dirty_bytes_discarded;
  Alcotest.(check int) "gone" 0 (Bc.size cache);
  Bc.tick cache ~now:60.0;
  Alcotest.(check int) "still nothing" 0 (List.length log.writebacks)

let test_invalidate_drops_clean_blocks () =
  let cache, _ = make_cache () in
  read cache ~file:1 ~size:bs ~off:0 ~len:bs;
  read cache ~file:2 ~size:bs ~off:0 ~len:bs;
  Bc.invalidate cache ~now:1.0 ~file:(f 1);
  Alcotest.(check int) "only file 2 left" 1 (Bc.size cache)

let test_flush_and_invalidate () =
  let cache, log = make_cache () in
  write cache ~file:1 ~size:0 ~off:0 ~len:100;
  Bc.flush_and_invalidate cache ~now:1.0 ~file:(f 1);
  Alcotest.(check int) "dirty data flushed" 1 (List.length log.writebacks);
  Alcotest.(check int) "blocks dropped" 0 (Bc.size cache)

(* -- capacity -------------------------------------------------------------------- *)

let test_lru_eviction_at_capacity () =
  let cache, _ = make_cache ~capacity:2 () in
  read ~now:1.0 cache ~file:1 ~size:bs ~off:0 ~len:bs;
  read ~now:2.0 cache ~file:2 ~size:bs ~off:0 ~len:bs;
  read ~now:3.0 cache ~file:3 ~size:bs ~off:0 ~len:bs;
  Alcotest.(check int) "bounded" 2 (Bc.size cache);
  (* file 1 was LRU: reading it again must miss *)
  let misses_before = (Bc.stats cache).all.read_misses in
  read ~now:4.0 cache ~file:1 ~size:bs ~off:0 ~len:bs;
  Alcotest.(check int) "file1 was evicted" (misses_before + 1)
    (Bc.stats cache).all.read_misses

let test_lru_touch_protects () =
  let cache, _ = make_cache ~capacity:2 () in
  read ~now:1.0 cache ~file:1 ~size:bs ~off:0 ~len:bs;
  read ~now:2.0 cache ~file:2 ~size:bs ~off:0 ~len:bs;
  (* touch file 1 so file 2 becomes the victim *)
  read ~now:3.0 cache ~file:1 ~size:bs ~off:0 ~len:bs;
  read ~now:4.0 cache ~file:3 ~size:bs ~off:0 ~len:bs;
  let misses_before = (Bc.stats cache).all.read_misses in
  read ~now:5.0 cache ~file:1 ~size:bs ~off:0 ~len:bs;
  Alcotest.(check int) "file1 survived" misses_before
    (Bc.stats cache).all.read_misses

let test_replacement_stats () =
  let cache, _ = make_cache ~capacity:2 () in
  read ~now:1.0 cache ~file:1 ~size:bs ~off:0 ~len:bs;
  read ~now:2.0 cache ~file:2 ~size:bs ~off:0 ~len:bs;
  read ~now:11.0 cache ~file:3 ~size:bs ~off:0 ~len:bs;
  let reps = (Bc.stats cache).replacements in
  let for_block = List.assoc Bc.Replace_for_block reps in
  Alcotest.(check int) "one for-block replacement" 1
    (Dfs_util.Stats.count for_block);
  (* age = now(11) - last_ref(1) *)
  Alcotest.(check (float 1e-6)) "age recorded" 10.0
    (Dfs_util.Stats.mean for_block)

let test_shrink_evicts_to_vm () =
  let cache, _ = make_cache ~capacity:4 () in
  for i = 1 to 4 do
    read ~now:(float_of_int i) cache ~file:i ~size:bs ~off:0 ~len:bs
  done;
  Bc.set_capacity cache ~now:10.0 2;
  Alcotest.(check int) "shrunk" 2 (Bc.size cache);
  let to_vm = List.assoc Bc.Replace_to_vm (Bc.stats cache).replacements in
  Alcotest.(check int) "two pages to VM" 2 (Dfs_util.Stats.count to_vm)

let test_shrink_flushes_dirty_to_vm () =
  let cache, log = make_cache ~capacity:2 () in
  write ~now:0.0 cache ~file:1 ~size:0 ~off:0 ~len:bs;
  read ~now:0.5 cache ~file:2 ~size:bs ~off:0 ~len:bs;
  (* two resident blocks; shrinking to one evicts the LRU (the dirty one),
     which must reach the server with the VM-page reason first *)
  Bc.set_capacity cache ~now:1.0 1;
  Alcotest.(check int) "one block left" 1 (Bc.size cache);
  (match log.writebacks with
  | [ (_, _, _, reason) ] ->
    Alcotest.(check bool) "vm reason" true (reason = Bc.Clean_vm)
  | [] -> Alcotest.fail "expected the dirty victim to be flushed"
  | _ -> Alcotest.fail "one writeback")

let test_capacity_floor () =
  let cache, _ = make_cache ~capacity:8 ~min_capacity:4 () in
  Bc.set_capacity cache ~now:0.0 1;
  Alcotest.(check int) "clamped to floor" 4 (Bc.capacity cache)

let test_resident_bytes () =
  let cache, _ = make_cache () in
  read cache ~file:1 ~size:(2 * bs) ~off:0 ~len:(2 * bs);
  Alcotest.(check int) "resident bytes" (2 * bs) (Bc.resident_bytes cache)

(* -- invariants / properties ---------------------------------------------------- *)

let prop_random_ops_keep_invariants =
  QCheck.Test.make ~name:"random op sequences keep cache invariants" ~count:60
    QCheck.(
      list_of_size Gen.(0 -- 120)
        (quad (int_bound 5) (int_bound 6) (int_bound 3) (int_bound 9)))
    (fun ops ->
      let cache, _ = make_cache ~capacity:8 ~min_capacity:2 () in
      let now = ref 0.0 in
      List.iter
        (fun (file, op, blk, amount) ->
          now := !now +. 1.0;
          let file = file + 1 in
          let size = 4 * bs in
          match op with
          | 0 -> read ~now:!now cache ~file ~size ~off:(blk * bs) ~len:(amount * 100)
          | 1 ->
            write ~now:!now cache ~file ~size ~off:(blk * bs) ~len:(amount * 100)
          | 2 -> Bc.tick cache ~now:!now
          | 3 -> Bc.fsync cache ~now:!now ~file:(f file)
          | 4 -> Bc.delete cache ~now:!now ~file:(f file)
          | 5 -> Bc.set_capacity cache ~now:!now (2 + amount)
          | _ -> Bc.recall cache ~now:!now ~file:(f file))
        ops;
      Bc.check_invariants cache;
      true)

let prop_reads_conserve_bytes =
  QCheck.Test.make ~name:"hits + misses = read ops" ~count:100
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_bound 4) (int_bound 7)))
    (fun ops ->
      let cache, _ = make_cache ~capacity:16 () in
      List.iter
        (fun (file, blk) ->
          read cache ~file:(file + 1) ~size:(8 * bs) ~off:(blk * bs) ~len:bs)
        ops;
      let s = (Bc.stats cache).all in
      s.read_hits + s.read_misses = s.read_ops)

let prop_writeback_bounded_by_written =
  QCheck.Test.make
    ~name:"writebacks + discards <= bytes written (block slack allowed)"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_bound 3) (int_bound 9)))
    (fun ops ->
      let cache, _ = make_cache ~capacity:64 () in
      let now = ref 0.0 in
      List.iter
        (fun (file, amount) ->
          now := !now +. 10.0;
          write ~now:!now cache ~file:(file + 1) ~size:0 ~off:0
            ~len:((amount + 1) * 100);
          Bc.tick cache ~now:!now)
        ops;
      Bc.fsync cache ~now:(!now +. 100.0) ~file:(f 1);
      Bc.fsync cache ~now:(!now +. 100.0) ~file:(f 2);
      Bc.fsync cache ~now:(!now +. 100.0) ~file:(f 3);
      Bc.fsync cache ~now:(!now +. 100.0) ~file:(f 4);
      let s = Bc.stats cache in
      (* every written byte is flushed at most once per dirtying; extents
         can exceed the app bytes only through head-of-block inclusion *)
      s.writeback_bytes + s.dirty_bytes_discarded
      <= s.all.bytes_written + (Bc.size cache * bs))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_ops_keep_invariants;
      prop_reads_conserve_bytes;
      prop_writeback_bounded_by_written;
    ]

let suite =
  [
    ("cold read fetches", `Quick, test_cold_read_fetches);
    ("warm read hits", `Quick, test_warm_read_hits);
    ("read spanning blocks", `Quick, test_read_spanning_blocks);
    ("partial tail fetch", `Quick, test_read_partial_tail_fetch);
    ("read offset within block", `Quick, test_read_offset_within_block);
    ("migrated class accounting", `Quick, test_migrated_class_accounting);
    ("paging class accounting", `Quick, test_paging_class_accounting);
    ("write dirties", `Quick, test_write_dirties);
    ("append needs no write fetch", `Quick, test_append_no_write_fetch);
    ("partial write non-resident fetches", `Quick, test_partial_write_nonresident_fetches);
    ("partial write resident no fetch", `Quick, test_partial_write_resident_no_fetch);
    ("full-block overwrite no fetch", `Quick, test_full_block_overwrite_no_fetch);
    ("delayed writeback after 30s", `Quick, test_delayed_writeback_after_30s);
    ("delayed write flushes whole file", `Quick, test_delayed_write_flushes_whole_file);
    ("writeback extent on append", `Quick, test_writeback_extent_append);
    ("fsync reason", `Quick, test_fsync_reason);
    ("recall reason and residency", `Quick, test_recall_reason_and_residency);
    ("delete discards dirty", `Quick, test_delete_discards_dirty);
    ("invalidate drops clean blocks", `Quick, test_invalidate_drops_clean_blocks);
    ("flush_and_invalidate", `Quick, test_flush_and_invalidate);
    ("lru eviction at capacity", `Quick, test_lru_eviction_at_capacity);
    ("lru touch protects", `Quick, test_lru_touch_protects);
    ("replacement stats", `Quick, test_replacement_stats);
    ("shrink evicts to VM", `Quick, test_shrink_evicts_to_vm);
    ("shrink flushes dirty to VM", `Quick, test_shrink_flushes_dirty_to_vm);
    ("capacity floor", `Quick, test_capacity_floor);
    ("resident bytes", `Quick, test_resident_bytes);
  ]
  @ qcheck_tests
