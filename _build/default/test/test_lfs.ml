(* Tests for the log-structured vs update-in-place disk-layout models. *)

open Dfs_lfs.Disk_layout

let p = default_params

let test_in_place_sequential_cheap () =
  let ops = List.init 10 (fun b -> Read { file = 1; block = b }) in
  let r = in_place ops in
  (* one seek then pure transfers *)
  Alcotest.(check (float 1e-9)) "one seek"
    (p.seek_time +. (10.0 *. p.transfer_time))
    r.total_time;
  Alcotest.(check int) "reads" 10 r.reads

let test_in_place_random_seeks () =
  let ops = List.init 10 (fun b -> Read { file = 1; block = b * 7 }) in
  let r = in_place ops in
  Alcotest.(check (float 1e-9)) "seek per op"
    (10.0 *. (p.seek_time +. p.transfer_time))
    r.total_time

let test_in_place_write_costs_same_as_read () =
  let reads = in_place (List.init 5 (fun b -> Read { file = 1; block = b * 3 })) in
  let writes = in_place (List.init 5 (fun b -> Write { file = 1; block = b * 3 })) in
  Alcotest.(check (float 1e-9)) "symmetric" reads.total_time writes.total_time;
  Alcotest.(check (float 1e-9)) "read time in read field" reads.total_time
    reads.read_time;
  Alcotest.(check (float 1e-9)) "write time in write field" writes.total_time
    writes.write_time

let test_log_batches_random_writes () =
  (* scattered small writes: in-place pays a seek each; the log amortizes
     one seek per segment *)
  let ops = List.init 256 (fun i -> Write { file = i; block = (i * 13) mod 97 }) in
  let ip = in_place ops in
  let lg = log_structured ops in
  Alcotest.(check bool) "log much cheaper for random writes" true
    (lg.total_time < ip.total_time /. 2.0)

let test_log_flushes_partial_segment () =
  let ops = [ Write { file = 1; block = 0 } ] in
  let r = log_structured ops in
  Alcotest.(check bool) "partial segment still written" true
    (r.write_time > 0.0);
  Alcotest.(check int) "one write" 1 r.writes

let test_log_reads_not_free () =
  let ops = List.init 10 (fun b -> Read { file = 1; block = b * 5 }) in
  let r = log_structured ops in
  Alcotest.(check bool) "reads seek" true
    (r.read_time >= 10.0 *. p.transfer_time)

let test_cleaning_overhead_charged () =
  let ops = List.init p.segment_blocks (fun i -> Write { file = 1; block = i }) in
  let cheap =
    log_structured ~params:{ p with cleaning_overhead = 0.0 } ops
  in
  let dear = log_structured ~params:{ p with cleaning_overhead = 1.0 } ops in
  Alcotest.(check (float 1e-9)) "cleaner doubles write cost"
    (2.0 *. cheap.write_time) dear.write_time

let test_empty_stream () =
  let r = log_structured [] in
  Alcotest.(check int) "no ops" 0 r.ops;
  Alcotest.(check (float 1e-9)) "no time" 0.0 r.total_time

(* workload derivation + the crossover claim *)

let mk_access ~file ~bytes_read ~bytes_written : Dfs_analysis.Session.access =
  {
    a_user = Dfs_trace.Ids.User.of_int 0;
    a_client = Dfs_trace.Ids.Client.of_int 0;
    a_migrated = false;
    a_file = Dfs_trace.Ids.File.of_int file;
    a_is_dir = false;
    a_mode = Dfs_trace.Record.Read_write;
    a_open_time = 0.0;
    a_close_time = 1.0;
    a_size_open = bytes_read;
    a_size_close = max bytes_read bytes_written;
    a_bytes_read = bytes_read;
    a_bytes_written = bytes_written;
    a_runs = [];
    a_repositions = 0;
  }

let bs = Dfs_util.Units.block_size

let test_workload_derivation () =
  let accesses = [ mk_access ~file:1 ~bytes_read:(10 * bs) ~bytes_written:(5 * bs) ] in
  let all_reads = workload_of_accesses ~read_miss_ratio:1.0 ~seed:1 accesses in
  let reads =
    List.length (List.filter (function Read _ -> true | Write _ -> false) all_reads)
  in
  Alcotest.(check int) "all read blocks at miss=1" 10 reads;
  let none = workload_of_accesses ~read_miss_ratio:0.0 ~seed:1 accesses in
  Alcotest.(check int) "no reads at miss=0" 0
    (List.length (List.filter (function Read _ -> true | Write _ -> false) none))

let test_workload_deterministic () =
  let accesses = [ mk_access ~file:1 ~bytes_read:(40 * bs) ~bytes_written:(10 * bs) ] in
  let a = workload_of_accesses ~seed:42 accesses in
  let b = workload_of_accesses ~seed:42 accesses in
  Alcotest.(check bool) "same seed, same ops" true (a = b)

let test_metadata_ops_added () =
  let accesses = [ mk_access ~file:1 ~bytes_read:0 ~bytes_written:(2 * bs) ] in
  let with_md = workload_of_accesses ~read_miss_ratio:0.0 ~seed:3 accesses in
  let without =
    workload_of_accesses ~read_miss_ratio:0.0 ~metadata:false ~seed:3 accesses
  in
  Alcotest.(check int) "two metadata writes added"
    (List.length without + 2)
    (List.length with_md)

let test_crossover_as_hit_ratios_improve () =
  (* a write-heavy future: as the client caches absorb more reads, the
     log layout's advantage must grow — the paper's section 6 argument *)
  let accesses =
    List.init 60 (fun i ->
        mk_access ~file:i ~bytes_read:(30 * bs) ~bytes_written:(10 * bs))
  in
  let table = crossover_table accesses ~seed:7 in
  let advantage = List.map (fun (_, ip, lg) -> ip /. lg) table in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b +. 0.05 && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "log advantage grows as misses fall" true
    (non_decreasing advantage);
  (* and at very high hit ratios the log clearly wins *)
  let _, ip, lg = List.nth table (List.length table - 1) in
  Alcotest.(check bool) "log wins when writes dominate" true (lg < ip)

let suite =
  [
    ("in-place sequential cheap", `Quick, test_in_place_sequential_cheap);
    ("in-place random seeks", `Quick, test_in_place_random_seeks);
    ("in-place read/write symmetric", `Quick, test_in_place_write_costs_same_as_read);
    ("log batches random writes", `Quick, test_log_batches_random_writes);
    ("log flushes partial segment", `Quick, test_log_flushes_partial_segment);
    ("log reads not free", `Quick, test_log_reads_not_free);
    ("cleaning overhead charged", `Quick, test_cleaning_overhead_charged);
    ("empty stream", `Quick, test_empty_stream);
    ("workload derivation", `Quick, test_workload_derivation);
    ("workload deterministic", `Quick, test_workload_deterministic);
    ("metadata ops added", `Quick, test_metadata_ops_added);
    ("crossover as hit ratios improve", `Quick, test_crossover_as_hit_ratios_improve);
  ]
