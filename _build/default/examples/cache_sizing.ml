(* Cache-size sweep: the BSD study predicted a 10% miss ratio for 4-MByte
   caches, but the paper measured ~40% for Sprite's much larger caches and
   blamed the new generation of multi-megabyte files.  This example sweeps
   the client cache ceiling and the large-file mix to show both effects:
   bigger caches help, but a heavy large-file tail moves the knee.

   Run with:  dune exec examples/cache_sizing.exe *)

module Cluster = Dfs_sim.Cluster
module Presets = Dfs_workload.Presets
module Params = Dfs_workload.Params
module Dist = Dfs_util.Dist

let run ~cache_mb ~heavy_tail =
  let base = Presets.scaled (Presets.trace 5) ~factor:0.02 in
  let params =
    if heavy_tail then base.params
    else
      (* shrink every group's large-file distribution to the BSD era *)
      {
        base.params with
        Params.groups =
          List.map
            (fun (g, (gp : Params.group_params)) ->
              ( g,
                {
                  gp with
                  Params.big_input_size =
                    Dist.Clamped (Dist.Lognormal (log 65536.0, 0.8), 8192.0, 262144.0);
                  big_output_size =
                    Dist.Clamped (Dist.Lognormal (log 32768.0, 0.8), 8192.0, 131072.0);
                } ))
            base.params.Params.groups;
      }
  in
  let mb = Dfs_util.Units.mib in
  let preset =
    {
      base with
      Presets.params;
      cluster_config =
        {
          base.cluster_config with
          Cluster.n_clients = 12;
          n_servers = 1;
          client_config =
            {
              base.cluster_config.client_config with
              Dfs_sim.Client.max_cache_fraction =
                float_of_int (cache_mb * mb)
                /. float_of_int base.cluster_config.client_config.memory_bytes;
              initial_cache_bytes = min (cache_mb * mb) (2 * mb);
            };
        };
    }
  in
  let cluster, _ = Presets.run preset in
  let misses = Dfs_util.Stats.create () in
  Array.iter
    (fun c ->
      let s = (Dfs_cache.Block_cache.stats (Dfs_sim.Client.cache c)).file in
      if s.read_ops > 0 then
        Dfs_util.Stats.add misses
          (100.0 *. float_of_int s.read_misses /. float_of_int s.read_ops))
    (Cluster.clients cluster);
  Dfs_util.Stats.mean misses

let () =
  Printf.printf
    "file read miss ratio (%%) vs cache ceiling, with 1985-sized files \
     and with 1991 multi-megabyte files:\n\n";
  Printf.printf "  %-12s %18s %18s\n" "cache (MB)" "small files only"
    "with large files";
  List.iter
    (fun cache_mb ->
      let small = run ~cache_mb ~heavy_tail:false in
      let large = run ~cache_mb ~heavy_tail:true in
      Printf.printf "  %-12d %17.1f%% %17.1f%%\n" cache_mb small large)
    [ 1; 2; 4; 8; 16 ];
  Printf.printf
    "\nWith 1985-style files a few megabytes of cache go a long way (the \
     BSD prediction); the 1991 large-file mix keeps miss ratios high even \
     for big caches — the paper's explanation for Table 6.\n"
