(* A day in the life of the cluster: simulate a full diurnal cycle on a
   small cluster and print the hour-by-hour profile — active users, file
   throughput, and paging — the rhythm behind Table 2's averages and
   Section 5.3's "paging happens at major changes of activity".

   Run with:  dune exec examples/day_in_the_life.exe *)

module Cluster = Dfs_sim.Cluster
module Record = Dfs_trace.Record
module Ids = Dfs_trace.Ids

let () =
  (* a small cluster keeps the full 24 hours quick *)
  let base = Dfs_workload.Presets.trace 1 in
  let preset =
    {
      base with
      Dfs_workload.Presets.cluster_config =
        { base.cluster_config with Cluster.n_clients = 8; n_servers = 1 };
      params =
        {
          base.params with
          Dfs_workload.Params.n_regular_users = 8;
          n_occasional_users = 8;
        };
    }
  in
  Printf.printf "simulating 24 hours on %d clients (%d users)...\n%!"
    preset.cluster_config.n_clients
    (preset.params.n_regular_users + preset.params.n_occasional_users);
  let cluster, _ = Dfs_workload.Presets.run preset in
  let trace = Cluster.merged_trace cluster in

  (* bucket records per hour *)
  let users = Array.init 24 (fun _ -> Hashtbl.create 8) in
  let bytes = Array.make 24 0 in
  let hour t = min 23 (int_of_float (t /. 3600.0)) in
  List.iter
    (fun (r : Record.t) ->
      let h = hour r.time in
      Hashtbl.replace users.(h) (Ids.User.to_int r.user) ();
      match r.kind with
      | Record.Close { bytes_read; bytes_written; _ } ->
        bytes.(h) <- bytes.(h) + bytes_read + bytes_written
      | _ -> ())
    trace;
  let peak = Array.fold_left max 1 bytes in
  Printf.printf "\n hour  users  MB moved  activity\n";
  Array.iteri
    (fun h u ->
      let mb = float_of_int bytes.(h) /. 1048576.0 in
      let bar_len = 40 * bytes.(h) / peak in
      Printf.printf " %02d:00  %4d  %8.1f  %s\n" h (Hashtbl.length u) mb
        (String.make bar_len '#'))
    users;

  (* the morning paging burst: swapped-out login sessions page back in *)
  let paging =
    Dfs_analysis.Paging_stats.analyze
      ~n_clients:preset.cluster_config.n_clients ~duration:86400.0
      ~raw:(Cluster.total_traffic cluster) ()
  in
  Format.printf "\n%a\n" Dfs_analysis.Paging_stats.pp paging;
  Printf.printf
    "\nQuiet nights, a ramp at 09:00, a lunch dip, an evening tail — the \
     reason Table 2's 24-hour averages sit far below the daytime peaks.\n"
