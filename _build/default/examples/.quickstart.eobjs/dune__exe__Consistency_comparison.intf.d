examples/consistency_comparison.mli:
