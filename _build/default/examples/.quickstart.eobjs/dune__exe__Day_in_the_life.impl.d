examples/day_in_the_life.ml: Array Dfs_analysis Dfs_sim Dfs_trace Dfs_workload Format Hashtbl List Printf String
