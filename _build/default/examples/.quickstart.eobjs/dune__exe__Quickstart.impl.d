examples/quickstart.ml: Dfs_analysis Dfs_sim Dfs_workload Format Printf
