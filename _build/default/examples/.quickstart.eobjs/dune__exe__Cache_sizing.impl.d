examples/cache_sizing.ml: Array Dfs_cache Dfs_sim Dfs_util Dfs_workload List Printf
