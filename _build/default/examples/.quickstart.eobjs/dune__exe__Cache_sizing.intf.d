examples/cache_sizing.mli:
