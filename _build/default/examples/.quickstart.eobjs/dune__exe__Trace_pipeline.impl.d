examples/trace_pipeline.ml: Array Dfs_analysis Dfs_sim Dfs_trace Dfs_util Dfs_workload Filename Format Fun List Printf Sys
