examples/pmake_burst.mli:
