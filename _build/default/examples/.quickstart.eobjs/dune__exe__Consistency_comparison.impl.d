examples/consistency_comparison.ml: Dfs_consistency Dfs_sim Dfs_workload List Printf
