examples/day_in_the_life.mli:
