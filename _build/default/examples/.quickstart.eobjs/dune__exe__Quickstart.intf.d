examples/quickstart.mli:
