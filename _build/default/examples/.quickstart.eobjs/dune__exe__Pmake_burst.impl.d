examples/pmake_burst.ml: Array Dfs_analysis Dfs_cache Dfs_sim Dfs_trace Dfs_util Dfs_workload Hashtbl List Printf
