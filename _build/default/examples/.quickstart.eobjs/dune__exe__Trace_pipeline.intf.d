examples/trace_pipeline.mli:
