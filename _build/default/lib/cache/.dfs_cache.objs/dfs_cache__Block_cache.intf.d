lib/cache/block_cache.mli: Dfs_trace Dfs_util
