lib/cache/block_cache.ml: Dfs_trace Dfs_util Hashtbl List Option
