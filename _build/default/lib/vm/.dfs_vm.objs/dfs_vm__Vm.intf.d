lib/vm/vm.mli: Dfs_trace
