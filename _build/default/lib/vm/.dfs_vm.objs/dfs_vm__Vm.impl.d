lib/vm/vm.ml: Dfs_trace Dfs_util Float Int List
