type category =
  | File_data
  | Shared
  | Directory
  | Paging_cached
  | Paging_backing
  | Other

let all_categories =
  [ File_data; Shared; Directory; Paging_cached; Paging_backing; Other ]

let category_name = function
  | File_data -> "file data"
  | Shared -> "write-shared"
  | Directory -> "directory"
  | Paging_cached -> "paging (cacheable)"
  | Paging_backing -> "paging (backing)"
  | Other -> "other"

let cacheable = function
  | File_data | Paging_cached -> true
  | Shared | Directory | Paging_backing | Other -> false

let index = function
  | File_data -> 0
  | Shared -> 1
  | Directory -> 2
  | Paging_cached -> 3
  | Paging_backing -> 4
  | Other -> 5

let n_categories = 6

type t = { reads : int array; writes : int array }

let create () =
  { reads = Array.make n_categories 0; writes = Array.make n_categories 0 }

let add_read t cat bytes =
  assert (bytes >= 0);
  let i = index cat in
  t.reads.(i) <- t.reads.(i) + bytes

let add_write t cat bytes =
  assert (bytes >= 0);
  let i = index cat in
  t.writes.(i) <- t.writes.(i) + bytes

let read_bytes t cat = t.reads.(index cat)

let write_bytes t cat = t.writes.(index cat)

let sum arr = Array.fold_left ( + ) 0 arr

let total_read t = sum t.reads

let total_write t = sum t.writes

let total t = total_read t + total_write t

let merge a b =
  {
    reads = Array.init n_categories (fun i -> a.reads.(i) + b.reads.(i));
    writes = Array.init n_categories (fun i -> a.writes.(i) + b.writes.(i));
  }
