(** Byte-traffic accounting by source category.

    Two taps use this module: the {e raw} traffic applications present to
    each client operating system (Table 5) and the traffic that reaches
    each server after the client caches have filtered it (Table 7). *)

type category =
  | File_data  (** cacheable reads/writes of regular files *)
  | Shared  (** uncacheable traffic on write-shared files *)
  | Directory  (** directory reads (not cached on clients) *)
  | Paging_cached  (** code and initialized-data faults (cacheable) *)
  | Paging_backing  (** backing-file page-ins/outs (uncacheable on clients) *)
  | Other  (** naming and miscellaneous *)

val all_categories : category list

val category_name : category -> string

val cacheable : category -> bool

type t

val create : unit -> t

val add_read : t -> category -> int -> unit

val add_write : t -> category -> int -> unit

val read_bytes : t -> category -> int

val write_bytes : t -> category -> int

val total_read : t -> int

val total_write : t -> int

val total : t -> int

val merge : t -> t -> t
(** Element-wise sum (for aggregating clients). *)
