(** The kernel-counter methodology of Section 3: each workstation's kernel
    keeps counters (cache size, traffic, ages...) that a user-level
    process samples at regular intervals; the per-client files are
    post-processed into the statistics of Section 5.

    This module stores the periodic samples; the instantaneous cache
    statistics live in {!Dfs_cache.Block_cache.stats} and are read at the
    end of a run. *)

type sample = {
  time : float;
  client : Dfs_trace.Ids.Client.t;
  cache_bytes : int;  (** resident cache size *)
  cache_capacity_bytes : int;  (** current block budget *)
  vm_pages : int;  (** VM demand at sample time *)
  active : bool;  (** any user activity since the previous sample *)
  rebooted : bool;  (** machine rebooted during the interval *)
}

type t

val create : unit -> t

val record : t -> sample -> unit

val samples : t -> sample list
(** Chronological. *)

val count : t -> int

val by_client : t -> (Dfs_trace.Ids.Client.t * sample list) list
(** Samples grouped per client, each list chronological. *)
