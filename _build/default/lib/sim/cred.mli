(** Identity of the principal performing a file-system operation: which
    user, which process, on which client, and whether the process is
    running under process migration.  Every trace record carries one. *)

type t = {
  user : Dfs_trace.Ids.User.t;
  pid : Dfs_trace.Ids.Process.t;
  client : Dfs_trace.Ids.Client.t;
  migrated : bool;
}

val make :
  user:Dfs_trace.Ids.User.t ->
  pid:Dfs_trace.Ids.Process.t ->
  client:Dfs_trace.Ids.Client.t ->
  migrated:bool ->
  t

val pp : Format.formatter -> t -> unit
