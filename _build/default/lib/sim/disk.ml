type config = { access_time : float; transfer_rate : float }

let default_config = { access_time = 0.025; transfer_rate = 1.5e6 }

type t = {
  cfg : config;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

let create ?(config = default_config) () =
  { cfg = config; reads = 0; writes = 0; bytes_read = 0; bytes_written = 0 }

let service t bytes =
  t.cfg.access_time +. (float_of_int bytes /. t.cfg.transfer_rate)

let read t ~bytes =
  assert (bytes >= 0);
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + bytes;
  service t bytes

let write t ~bytes =
  assert (bytes >= 0);
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + bytes;
  service t bytes

let reads t = t.reads

let writes t = t.writes

let bytes_read t = t.bytes_read

let bytes_written t = t.bytes_written
