type t = {
  user : Dfs_trace.Ids.User.t;
  pid : Dfs_trace.Ids.Process.t;
  client : Dfs_trace.Ids.Client.t;
  migrated : bool;
}

let make ~user ~pid ~client ~migrated = { user; pid; client; migrated }

let pp ppf t =
  Format.fprintf ppf "%a/%a@%a%s" Dfs_trace.Ids.User.pp t.user
    Dfs_trace.Ids.Process.pp t.pid Dfs_trace.Ids.Client.pp t.client
    (if t.migrated then "(m)" else "")
