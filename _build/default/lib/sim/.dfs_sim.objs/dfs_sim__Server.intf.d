lib/sim/server.mli: Cred Dfs_cache Dfs_trace Disk Fs_state Network Traffic
