lib/sim/client.ml: Cred Dfs_cache Dfs_trace Dfs_util Dfs_vm Engine Fs_state Fun Lazy List Network Server Traffic
