lib/sim/cluster.mli: Client Counters Dfs_trace Dfs_util Engine Fs_state Network Server Traffic
