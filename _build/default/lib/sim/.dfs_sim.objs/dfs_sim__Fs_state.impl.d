lib/sim/fs_state.ml: Array Dfs_trace Dfs_util
