lib/sim/cred.mli: Dfs_trace Format
