lib/sim/client.mli: Cred Dfs_cache Dfs_trace Dfs_vm Engine Fs_state Server Traffic
