lib/sim/network.ml: Hashtbl Option
