lib/sim/engine.mli:
