lib/sim/engine.ml: Dfs_util Effect Float Fun Int
