lib/sim/counters.ml: Dfs_trace List Option
