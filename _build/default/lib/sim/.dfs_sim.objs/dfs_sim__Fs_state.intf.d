lib/sim/fs_state.mli: Dfs_trace Dfs_util
