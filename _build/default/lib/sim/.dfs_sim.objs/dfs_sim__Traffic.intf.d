lib/sim/traffic.mli:
