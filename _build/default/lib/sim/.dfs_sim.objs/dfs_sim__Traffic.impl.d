lib/sim/traffic.ml: Array
