lib/sim/counters.mli: Dfs_trace
