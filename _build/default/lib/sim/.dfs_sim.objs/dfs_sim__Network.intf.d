lib/sim/network.mli:
