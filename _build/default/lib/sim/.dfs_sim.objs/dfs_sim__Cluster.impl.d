lib/sim/cluster.ml: Array Client Counters Cred Dfs_cache Dfs_trace Dfs_util Dfs_vm Engine Fs_state List Network Server Traffic
