lib/sim/server.ml: Cred Dfs_cache Dfs_trace Dfs_util Disk Fs_state Lazy List Network Traffic
