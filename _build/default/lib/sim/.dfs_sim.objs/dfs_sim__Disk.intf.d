lib/sim/disk.mli:
