lib/sim/cred.ml: Dfs_trace Format
