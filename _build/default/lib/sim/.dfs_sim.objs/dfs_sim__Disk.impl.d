lib/sim/disk.ml:
