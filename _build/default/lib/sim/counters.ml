module Client = Dfs_trace.Ids.Client

type sample = {
  time : float;
  client : Client.t;
  cache_bytes : int;
  cache_capacity_bytes : int;
  vm_pages : int;
  active : bool;
  rebooted : bool;
}

type t = { mutable rev_samples : sample list; mutable count : int }

let create () = { rev_samples = []; count = 0 }

let record t s =
  t.rev_samples <- s :: t.rev_samples;
  t.count <- t.count + 1

let samples t = List.rev t.rev_samples

let count t = t.count

let by_client t =
  let tbl = Client.Tbl.create 64 in
  List.iter
    (fun s ->
      let l = Option.value ~default:[] (Client.Tbl.find_opt tbl s.client) in
      Client.Tbl.replace tbl s.client (s :: l))
    t.rev_samples;
  Client.Tbl.fold (fun c l acc -> (c, l) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Client.compare a b)
