type block = {
  mutable dirty : bool;
  mutable dirtied_at : float;
  mutable dirty_bytes : int;
}

type t = (int, (int, block) Hashtbl.t) Hashtbl.t

let create () : t = Hashtbl.create 8

let tbl t client =
  match Hashtbl.find_opt t client with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 16 in
    Hashtbl.replace t client tbl;
    tbl

let mem t ~client ~index =
  match Hashtbl.find_opt t client with
  | None -> false
  | Some tbl -> Hashtbl.mem tbl index

let insert_clean t ~client ~index =
  let tbl = tbl t client in
  if not (Hashtbl.mem tbl index) then
    Hashtbl.replace tbl index { dirty = false; dirtied_at = 0.0; dirty_bytes = 0 }

let insert_dirty t ~client ~index ~bytes ~now =
  let block_size = Dfs_util.Units.block_size in
  let tbl = tbl t client in
  match Hashtbl.find_opt tbl index with
  | Some b ->
    if not b.dirty then begin
      b.dirty <- true;
      b.dirtied_at <- now
    end;
    b.dirty_bytes <- min block_size (b.dirty_bytes + bytes)
  | None ->
    Hashtbl.replace tbl index
      { dirty = true; dirtied_at = now; dirty_bytes = min block_size bytes }

let invalidate_client t ~client = Hashtbl.remove t client

let flush_dirty t ~client ?older_than ~now () =
  match Hashtbl.find_opt t client with
  | None -> (0, 0)
  | Some tbl ->
    let cleaned = ref 0 and bytes = ref 0 in
    Hashtbl.iter
      (fun _ b ->
        if b.dirty then begin
          let old_enough =
            match older_than with
            | None -> true
            | Some age -> now -. b.dirtied_at >= age
          in
          if old_enough then begin
            b.dirty <- false;
            bytes := !bytes + b.dirty_bytes;
            b.dirty_bytes <- 0;
            incr cleaned
          end
        end)
      tbl;
    (!cleaned, !bytes)

let dirty_count t ~client =
  match Hashtbl.find_opt t client with
  | None -> 0
  | Some tbl ->
    Hashtbl.fold (fun _ b acc -> if b.dirty then acc + 1 else acc) tbl 0

let clients t = Hashtbl.fold (fun c _ acc -> c :: acc) t []
