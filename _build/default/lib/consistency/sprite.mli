(** The current Sprite mechanism (Section 5.5): while a file undergoes
    concurrent write-sharing, client caching is disabled until every
    client has closed it, and each application request passes through to
    the server individually — so Sprite transfers exactly the bytes the
    applications request, with one RPC per request. *)

val simulate : Shared_events.stream list -> Overhead.result
