let simulate streams =
  List.fold_left
    (fun acc (s : Shared_events.stream) ->
      Overhead.add acc ~bytes:s.requested_bytes ~rpcs:s.requests)
    Overhead.zero streams
