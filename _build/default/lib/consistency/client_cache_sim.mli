(** A miniature per-client block cache used by the modified-Sprite and
    token simulations: block residency and dirtiness only (the real
    caches are assumed infinitely large, as in the paper's simulator),
    with a 30-second delayed-write clock. *)

type t

val create : unit -> t

val mem : t -> client:int -> index:int -> bool

val insert_clean : t -> client:int -> index:int -> unit

val insert_dirty : t -> client:int -> index:int -> bytes:int -> now:float -> unit
(** [bytes] is the portion of the block this write dirtied; accumulated
    (and capped at the block size) for writeback accounting. *)

val invalidate_client : t -> client:int -> unit
(** Drop all of one client's blocks (dirty data is assumed to have been
    flushed by the caller first). *)

val flush_dirty :
  t -> client:int -> ?older_than:float -> now:float -> unit -> int * int
(** Clean the client's dirty blocks (all of them, or only those dirty for
    at least [older_than] seconds); returns [(blocks, bytes)] cleaned —
    bytes are the accumulated dirty extents, like Sprite's writebacks.
    Cleaned blocks stay resident. *)

val dirty_count : t -> client:int -> int

val clients : t -> int list
