type result = { bytes_transferred : int; rpcs : int }

let zero = { bytes_transferred = 0; rpcs = 0 }

let add r ~bytes ~rpcs =
  { bytes_transferred = r.bytes_transferred + bytes; rpcs = r.rpcs + rpcs }

type ratios = { bytes_ratio : float; rpc_ratio : float }

let ratios ~demand_bytes ~demand_requests result =
  {
    bytes_ratio =
      (if demand_bytes = 0 then 0.0
       else float_of_int result.bytes_transferred /. float_of_int demand_bytes);
    rpc_ratio =
      (if demand_requests = 0 then 0.0
       else float_of_int result.rpcs /. float_of_int demand_requests);
  }

let block_size = Dfs_util.Units.block_size

let blocks_in_range ~off ~len f =
  if len > 0 then begin
    let first = off / block_size and last = (off + len - 1) / block_size in
    for i = first to last do
      f i
    done
  end

let is_partial_block ~off ~len ~index =
  let block_start = index * block_size in
  let lo = max off block_start and hi = min (off + len) (block_start + block_size) in
  hi - lo < block_size
