module E = Shared_events

type opener = { client : int; mutable count : int; mutable writers : int }

let writeback_delay = 30.0

let simulate streams =
  let result = ref Overhead.zero in
  let charge ~bytes ~rpcs = result := Overhead.add !result ~bytes ~rpcs in
  List.iter
    (fun (s : E.stream) ->
      let caches = Client_cache_sim.create () in
      let openers : opener list ref = ref [] in
      let sharing () =
        List.length !openers >= 2
        && List.exists (fun o -> o.writers > 0) !openers
      in
      let flush_all ~now =
        List.iter
          (fun client ->
            let n, bytes = Client_cache_sim.flush_dirty caches ~client ~now () in
            if n > 0 then charge ~bytes ~rpcs:n)
          (Client_cache_sim.clients caches)
      in
      let flush_expired ~now ~client =
        let n, bytes =
          Client_cache_sim.flush_dirty caches ~client
            ~older_than:writeback_delay ~now ()
        in
        if n > 0 then charge ~bytes ~rpcs:n
      in
      List.iter
        (fun { E.time = now; ev } ->
          match ev with
          | E.Open { client; writer } ->
            let was_sharing = sharing () in
            (match List.find_opt (fun o -> o.client = client) !openers with
            | Some o ->
              o.count <- o.count + 1;
              if writer then o.writers <- o.writers + 1
            | None ->
              openers :=
                { client; count = 1; writers = (if writer then 1 else 0) }
                :: !openers);
            if (not was_sharing) && sharing () then begin
              (* sharing (re)starts: flush and invalidate everywhere *)
              flush_all ~now;
              List.iter
                (fun client -> Client_cache_sim.invalidate_client caches ~client)
                (Client_cache_sim.clients caches)
            end
          | E.Close { client; writer } -> (
            match List.find_opt (fun o -> o.client = client) !openers with
            | Some o ->
              o.count <- o.count - 1;
              if writer then o.writers <- max 0 (o.writers - 1);
              if o.count <= 0 then
                openers := List.filter (fun o' -> o'.client <> client) !openers
            | None -> ())
          | E.Read { client; off; len } ->
            flush_expired ~now ~client;
            if sharing () then (* uncacheable: pass through *)
              charge ~bytes:len ~rpcs:1
            else
              Overhead.blocks_in_range ~off ~len (fun index ->
                  if not (Client_cache_sim.mem caches ~client ~index) then begin
                    charge ~bytes:Overhead.block_size ~rpcs:1;
                    Client_cache_sim.insert_clean caches ~client ~index
                  end)
          | E.Write { client; off; len } ->
            flush_expired ~now ~client;
            if sharing () then charge ~bytes:len ~rpcs:1
            else
              Overhead.blocks_in_range ~off ~len (fun index ->
                  if
                    (not (Client_cache_sim.mem caches ~client ~index))
                    && Overhead.is_partial_block ~off ~len ~index
                  then
                    (* write fetch *)
                    charge ~bytes:Overhead.block_size ~rpcs:1;
                  let block_start = index * Overhead.block_size in
                  let lo = max off block_start in
                  let hi = min (off + len) (block_start + Overhead.block_size) in
                  Client_cache_sim.insert_dirty caches ~client ~index
                    ~bytes:(hi - lo) ~now))
        s.events;
      (match s.events with
      | [] -> ()
      | evs ->
        let last = (List.nth evs (List.length evs - 1)).E.time in
        flush_all ~now:(last +. writeback_delay)))
    streams;
  !result
