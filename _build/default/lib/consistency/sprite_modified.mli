(** The modified Sprite mechanism: identical to Sprite except that a file
    becomes cacheable again as soon as enough clients close it to end the
    concurrent write-sharing (Sprite proper waits until {e every} client
    has closed it).  While cacheable, reads miss into whole-block fetches
    and writes are delayed 30 seconds; when sharing resumes, every
    client's dirty blocks are flushed and caches are invalidated. *)

val simulate : Shared_events.stream list -> Overhead.result
