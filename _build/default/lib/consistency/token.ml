module E = Shared_events

type token_state =
  | No_token
  | Readers of int list  (* client ids *)
  | Writer of int

let writeback_delay = 30.0

let simulate streams =
  let result = ref Overhead.zero in
  let charge ~bytes ~rpcs = result := Overhead.add !result ~bytes ~rpcs in
  List.iter
    (fun (s : E.stream) ->
      let caches = Client_cache_sim.create () in
      let token = ref No_token in
      let flush_and_drop ~now client =
        (* write-token recall: the dirty data rides along with the recall
           reply, so the bytes are charged but the recall is 1 RPC *)
        let _, bytes = Client_cache_sim.flush_dirty caches ~client ~now () in
        Client_cache_sim.invalidate_client caches ~client;
        charge ~bytes ~rpcs:1
      in
      let flush_expired ~now ~client =
        let n, bytes =
          Client_cache_sim.flush_dirty caches ~client
            ~older_than:writeback_delay ~now ()
        in
        if n > 0 then charge ~bytes ~rpcs:n
      in
      let acquire_read ~now client =
        match !token with
        | No_token ->
          token := Readers [ client ];
          charge ~bytes:0 ~rpcs:1
        | Readers rs ->
          if not (List.mem client rs) then begin
            token := Readers (client :: rs);
            charge ~bytes:0 ~rpcs:1
          end
        | Writer w ->
          if w <> client then begin
            (* recall the write token (flushes w's dirty data) and grant a
               read token to both *)
            flush_and_drop ~now w;
            token := Readers [ client; w ];
            charge ~bytes:0 ~rpcs:1
          end
      in
      let acquire_write ~now client =
        match !token with
        | No_token ->
          token := Writer client;
          charge ~bytes:0 ~rpcs:1
        | Writer w ->
          if w <> client then begin
            flush_and_drop ~now w;
            token := Writer client;
            charge ~bytes:0 ~rpcs:1
          end
        | Readers rs ->
          (* invalidate every other reader's cache: one callback each *)
          let others = List.filter (fun r -> r <> client) rs in
          List.iter
            (fun r ->
              Client_cache_sim.invalidate_client caches ~client:r;
              charge ~bytes:0 ~rpcs:1)
            others;
          token := Writer client;
          if not (List.mem client rs) then charge ~bytes:0 ~rpcs:1
      in
      List.iter
        (fun { E.time = now; ev } ->
          match ev with
          | E.Open _ | E.Close _ -> ()
          | E.Read { client; off; len } ->
            flush_expired ~now ~client;
            acquire_read ~now client;
            Overhead.blocks_in_range ~off ~len (fun index ->
                if not (Client_cache_sim.mem caches ~client ~index) then begin
                  charge ~bytes:Overhead.block_size ~rpcs:1;
                  Client_cache_sim.insert_clean caches ~client ~index
                end)
          | E.Write { client; off; len } ->
            flush_expired ~now ~client;
            acquire_write ~now client;
            Overhead.blocks_in_range ~off ~len (fun index ->
                if
                  (not (Client_cache_sim.mem caches ~client ~index))
                  && Overhead.is_partial_block ~off ~len ~index
                then charge ~bytes:Overhead.block_size ~rpcs:1;
                let block_start = index * Overhead.block_size in
                let lo = max off block_start in
                let hi = min (off + len) (block_start + Overhead.block_size) in
                Client_cache_sim.insert_dirty caches ~client ~index
                  ~bytes:(hi - lo) ~now))
        s.events;
      (match s.events with
      | [] -> ()
      | evs ->
        let last = (List.nth evs (List.length evs - 1)).E.time in
        List.iter
          (fun client ->
            let n, bytes =
              Client_cache_sim.flush_dirty caches ~client
                ~now:(last +. writeback_delay) ()
            in
            if n > 0 then charge ~bytes ~rpcs:n)
          (Client_cache_sim.clients caches)))
    streams;
  !result
