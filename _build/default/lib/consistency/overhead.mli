(** Common accounting for the consistency-mechanism simulations of
    Table 12.

    Each mechanism is charged the bytes it moves between clients and the
    server and the remote procedure calls it issues, and is compared with
    the application demand: the bytes and requests the applications
    actually made to write-shared files.  The current Sprite mechanism
    transfers exactly the demand. *)

type result = { bytes_transferred : int; rpcs : int }

val zero : result

val add : result -> bytes:int -> rpcs:int -> result

type ratios = { bytes_ratio : float; rpc_ratio : float }

val ratios : demand_bytes:int -> demand_requests:int -> result -> ratios

val block_size : int
(** 4 KBytes, the cache block size used by all three simulations. *)

val blocks_in_range : off:int -> len:int -> (int -> unit) -> unit
(** Iterate the indices of the blocks overlapped by [off, off+len). *)

val is_partial_block : off:int -> len:int -> index:int -> bool
(** True when the request covers only part of block [index]. *)
