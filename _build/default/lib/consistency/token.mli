(** The token-based mechanism of Locus/Echo/DEcorum: a file is always
    cacheable on at least one client.  A client must hold a read-only or
    read-write token to access the file; the server guarantees a single
    write token or any number of read tokens.  Conflicting requests recall
    outstanding tokens (write-token recalls flush the holder's dirty
    blocks; the recall RPC piggybacks the dirty data, as the paper's
    simulation assumes).  Fine-grained sharing makes tokens ping-pong and
    whole cache blocks get re-fetched — the source of the high variance
    the paper observed. *)

val simulate : Shared_events.stream list -> Overhead.result
