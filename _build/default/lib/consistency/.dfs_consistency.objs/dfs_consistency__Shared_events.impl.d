lib/consistency/shared_events.ml: Dfs_trace Hashtbl List
