lib/consistency/shared_events.mli: Dfs_trace
