lib/consistency/token.mli: Overhead Shared_events
