lib/consistency/sprite_modified.mli: Overhead Shared_events
