lib/consistency/token.ml: Client_cache_sim List Overhead Shared_events
