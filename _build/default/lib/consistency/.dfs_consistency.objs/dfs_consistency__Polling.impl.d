lib/consistency/polling.ml: Dfs_trace Hashtbl List
