lib/consistency/polling.mli: Dfs_trace
