lib/consistency/client_cache_sim.mli:
