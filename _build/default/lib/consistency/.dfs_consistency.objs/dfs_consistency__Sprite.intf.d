lib/consistency/sprite.mli: Overhead Shared_events
