lib/consistency/sprite.ml: List Overhead Shared_events
