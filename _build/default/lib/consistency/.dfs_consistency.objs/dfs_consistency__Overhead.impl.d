lib/consistency/overhead.ml: Dfs_util
