lib/consistency/sprite_modified.ml: Client_cache_sim List Overhead Shared_events
