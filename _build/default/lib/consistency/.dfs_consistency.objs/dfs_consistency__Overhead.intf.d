lib/consistency/overhead.mli:
