lib/consistency/client_cache_sim.ml: Dfs_util Hashtbl
