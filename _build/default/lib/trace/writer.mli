(** Trace sinks.

    Each simulated file server writes its own trace (the paper gathered
    traces on the four servers only); a writer prepends the format header
    and encodes one record per line. *)

type t

val to_buffer : Buffer.t -> t

val to_channel : out_channel -> t

val write : t -> Record.t -> unit

val count : t -> int
(** Number of records written so far. *)

val flush : t -> unit

val with_file : string -> (t -> 'a) -> 'a
(** [with_file path f] opens [path], runs [f], and closes the file even if
    [f] raises. *)
