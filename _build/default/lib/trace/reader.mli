(** Trace parsing.

    Readers check the version header and report the first malformed line
    with its line number. *)

val of_string : string -> (Record.t list, string) result
(** Parse a whole trace held in memory. *)

val of_file : string -> (Record.t list, string) result

val fold_file :
  string -> init:'a -> f:('a -> Record.t -> 'a) -> ('a, string) result
(** Streaming fold over a trace file; does not hold records in memory. *)
