module type S = sig
  type t

  val of_int : int -> t

  val to_int : t -> int

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val hash : t -> int

  val pp : Format.formatter -> t -> unit

  module Tbl : Hashtbl.S with type key = t

  module Set : Set.S with type elt = t

  module Map : Map.S with type key = t
end

module Make (Tag : sig
  val name : string
end) : S = struct
  type t = int

  let of_int i =
    assert (i >= 0);
    i

  let to_int i = i

  let equal = Int.equal

  let compare = Int.compare

  let hash = Hashtbl.hash

  let pp ppf i = Format.fprintf ppf "%s%d" Tag.name i

  module Key = struct
    type nonrec t = t

    let equal = equal

    let hash = hash

    let compare = compare
  end

  module Tbl = Hashtbl.Make (Key)

  module Set = Set.Make (Key)

  module Map = Map.Make (Key)
end
