module User = Id.Make (struct
  let name = "user"
end)

module Client = Id.Make (struct
  let name = "client"
end)

module Server = Id.Make (struct
  let name = "server"
end)

module Process = Id.Make (struct
  let name = "pid"
end)

module File = Id.Make (struct
  let name = "file"
end)
