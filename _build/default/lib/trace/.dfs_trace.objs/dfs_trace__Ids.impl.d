lib/trace/ids.ml: Id
