lib/trace/merge.ml: Dfs_util Ids List Record
