lib/trace/writer.mli: Buffer Record
