lib/trace/record.ml: Bool Float Format Ids
