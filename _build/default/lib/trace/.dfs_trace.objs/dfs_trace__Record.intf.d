lib/trace/record.mli: Format Ids
