lib/trace/codec.ml: Buffer Ids Printf Record Result String
