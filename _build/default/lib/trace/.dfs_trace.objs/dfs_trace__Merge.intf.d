lib/trace/merge.mli: Ids Record
