lib/trace/codec.mli: Record
