lib/trace/reader.ml: Codec Fun List Printf Result Seq String
