lib/trace/writer.ml: Buffer Codec Fun Stdlib
