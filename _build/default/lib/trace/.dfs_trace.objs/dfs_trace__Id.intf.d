lib/trace/id.mli: Format Hashtbl Map Set
