lib/trace/id.ml: Format Hashtbl Int Map Set
