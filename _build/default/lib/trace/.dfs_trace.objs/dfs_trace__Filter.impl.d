lib/trace/filter.ml: Hashtbl Ids List Option Record
