lib/trace/reader.mli: Record
