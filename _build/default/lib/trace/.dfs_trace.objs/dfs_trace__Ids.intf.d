lib/trace/ids.mli: Id
