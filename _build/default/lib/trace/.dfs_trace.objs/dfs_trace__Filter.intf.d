lib/trace/filter.mli: Ids Record
