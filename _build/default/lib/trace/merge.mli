(** Merging the per-server traces into one time-ordered stream.

    Mirrors Section 3 of the paper: "the traces included enough timing
    information to merge the traces from the different servers into a
    single ordered list of records", after removing the records caused by
    writing the trace files themselves and by the nightly backup. *)

val merge : Record.t list list -> Record.t list
(** K-way merge of per-server traces, each already sorted by time.
    Ties are broken by server id, so the result is deterministic. *)

val scrub : self_users:Ids.User.Set.t -> Record.t list -> Record.t list
(** Drop records belonging to infrastructure users (the trace-collection
    daemon, the nightly backup). *)

val is_sorted : Record.t list -> bool
(** True when records are in non-decreasing time order. *)
