(** The identifier namespaces used throughout the system. *)

module User : Id.S
module Client : Id.S
module Server : Id.S
module Process : Id.S
module File : Id.S
