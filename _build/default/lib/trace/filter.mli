(** Trace filters used by the analyses.

    The paper reprocesses traces under various exclusions (e.g. "ignoring
    all accesses from the kernel development group", excluding swap files);
    these combinators express such passes. *)

val by_time : lo:float -> hi:float -> Record.t list -> Record.t list
(** Keep records with [lo <= time < hi]. *)

val by_users : Ids.User.Set.t -> Record.t list -> Record.t list
(** Keep only records from the given users. *)

val excluding_users : Ids.User.Set.t -> Record.t list -> Record.t list

val migrated_only : Record.t list -> Record.t list

val files_only : Record.t list -> Record.t list
(** Drop directory opens/deletes and directory-read records, keeping only
    accesses to regular files.  Closes and repositions of directory opens
    are dropped too (matched by open state). *)

val duration : Record.t list -> float
(** Time span covered by a (sorted) trace: last time - first time;
    0 for traces with fewer than two records. *)
