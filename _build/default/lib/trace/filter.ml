let by_time ~lo ~hi records =
  List.filter (fun (r : Record.t) -> r.time >= lo && r.time < hi) records

let by_users users records =
  List.filter (fun (r : Record.t) -> Ids.User.Set.mem r.user users) records

let excluding_users users records =
  List.filter
    (fun (r : Record.t) -> not (Ids.User.Set.mem r.user users))
    records

let migrated_only records =
  List.filter (fun (r : Record.t) -> r.migrated) records

(* Open handles are identified by (client, pid, file); that triple is how
   the analyses pair closes and repositions with their opens as well. *)
module Handle = struct
  type t = int * int * int

  let of_record (r : Record.t) =
    ( Ids.Client.to_int r.client,
      Ids.Process.to_int r.pid,
      Ids.File.to_int r.file )
end

let files_only records =
  let dir_handles : (Handle.t, int) Hashtbl.t = Hashtbl.create 64 in
  (* A handle may be opened more than once concurrently by the same pid in
     pathological traces; keep a depth count so nested dir opens balance. *)
  let keep (r : Record.t) =
    let h = Handle.of_record r in
    match r.kind with
    | Open { is_dir; _ } ->
      if is_dir then begin
        let depth = Option.value ~default:0 (Hashtbl.find_opt dir_handles h) in
        Hashtbl.replace dir_handles h (depth + 1);
        false
      end
      else true
    | Close _ -> (
      match Hashtbl.find_opt dir_handles h with
      | Some depth ->
        if depth <= 1 then Hashtbl.remove dir_handles h
        else Hashtbl.replace dir_handles h (depth - 1);
        false
      | None -> true)
    | Reposition _ -> not (Hashtbl.mem dir_handles h)
    | Delete { is_dir; _ } -> not is_dir
    | Dir_read _ -> false
    | Truncate _ | Shared_read _ | Shared_write _ -> true
  in
  List.filter keep records

let duration = function
  | [] | [ _ ] -> 0.0
  | first :: _ as records ->
    let last = List.fold_left (fun _ r -> r) first records in
    (last : Record.t).time -. (first : Record.t).time
