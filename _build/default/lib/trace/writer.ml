type t = {
  emit : string -> unit;
  do_flush : unit -> unit;
  mutable count : int;
  mutable wrote_header : bool;
}

let make emit do_flush = { emit; do_flush; count = 0; wrote_header = false }

let to_buffer buf =
  make
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    (fun () -> ())

let to_channel oc =
  make
    (fun s ->
      output_string oc s;
      output_char oc '\n')
    (fun () -> Stdlib.flush oc)

let write t r =
  if not t.wrote_header then begin
    t.emit Codec.header;
    t.wrote_header <- true
  end;
  t.emit (Codec.encode r);
  t.count <- t.count + 1

let count t = t.count

let flush t = t.do_flush ()

let with_file path f =
  let oc = open_out path in
  let t = to_channel oc in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let result = f t in
      flush t;
      result)
