(** Distinct integer-backed identifier types.

    The simulator juggles users, clients, servers, processes and files;
    giving each its own abstract id type prevents the classic bug of
    indexing one table with another's id. *)

module type S = sig
  type t

  val of_int : int -> t
  (** Requires a non-negative integer. *)

  val to_int : t -> int

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val hash : t -> int

  val pp : Format.formatter -> t -> unit

  module Tbl : Hashtbl.S with type key = t

  module Set : Set.S with type elt = t

  module Map : Map.S with type key = t
end

module Make (Tag : sig
  val name : string
end) : S
