module Cursor = struct
  type t = Record.t * Record.t list

  let compare (a, _) (b, _) = Record.compare_time a b
end

module H = Dfs_util.Heap.Make (Cursor)

let merge streams =
  let heap = H.create () in
  List.iter
    (function [] -> () | r :: rest -> H.push heap (r, rest))
    streams;
  let rec go acc =
    match H.pop heap with
    | None -> List.rev acc
    | Some (r, rest) ->
      (match rest with [] -> () | r' :: rest' -> H.push heap (r', rest'));
      go (r :: acc)
  in
  go []

let scrub ~self_users records =
  List.filter
    (fun (r : Record.t) -> not (Ids.User.Set.mem r.user self_users))
    records

let rec is_sorted = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> (a : Record.t).time <= b.time && is_sorted rest
