(** The experiment registry: one entry per table and figure of the
    paper's evaluation.  Each experiment consumes a generated
    {!Dataset.t} and renders a report that prints the measured values
    next to the paper's (with min-max across the eight traces where the
    paper reports them). *)

type t = {
  id : string;  (** "table1".."table12", "fig1".."fig4" *)
  title : string;
  description : string;
  run : Dataset.t -> string;
}

val all : t list
(** In paper order: tables 1-3, figures 1-4, tables 4-12. *)

val find : string -> t option

val ids : string list
