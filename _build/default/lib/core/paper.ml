type range = { value : float; lo : float; hi : float }

let range value lo hi = { value; lo; hi }

(* -- Table 2 ---------------------------------------------------------------- *)

type activity_col = {
  max_active : float;
  avg_active : float;
  sd_active : float;
  avg_tput : float;
  sd_tput : float;
  peak_user : float;
  peak_total : float;
}

let t2_all_10min =
  {
    max_active = 27.0;
    avg_active = 9.1;
    sd_active = 5.1;
    avg_tput = 8.0;
    sd_tput = 36.0;
    peak_user = 458.0;
    peak_total = 681.0;
  }

let t2_mig_10min =
  {
    max_active = 5.0;
    avg_active = 0.91;
    sd_active = 0.98;
    avg_tput = 50.7;
    sd_tput = 96.0;
    peak_user = 458.0;
    peak_total = 616.0;
  }

let t2_bsd_10min_avg_users = 12.6

let t2_bsd_10min_tput = 0.40

let t2_all_10s =
  {
    max_active = 12.0;
    avg_active = 1.6;
    sd_active = 1.5;
    avg_tput = 47.0;
    sd_tput = 268.0;
    peak_user = 9871.0;
    peak_total = 9977.0;
  }

let t2_mig_10s =
  {
    max_active = 4.0;
    avg_active = 0.14;
    sd_active = 0.4;
    avg_tput = 316.0;
    sd_tput = 808.0;
    peak_user = 9871.0;
    peak_total = 9871.0;
  }

let t2_bsd_10s_avg_users = 2.5

let t2_bsd_10s_tput = 1.5

(* -- Table 3 ---------------------------------------------------------------- *)

type t3_class = {
  accesses : range;
  bytes : range;
  whole_by_acc : range;
  seq_by_acc : range;
  rand_by_acc : range;
  whole_by_bytes : range;
  seq_by_bytes : range;
  rand_by_bytes : range;
}

let t3_read_only =
  {
    accesses = range 88.0 82.0 94.0;
    bytes = range 80.0 63.0 93.0;
    whole_by_acc = range 78.0 64.0 91.0;
    seq_by_acc = range 19.0 7.0 33.0;
    rand_by_acc = range 3.0 1.0 5.0;
    whole_by_bytes = range 89.0 46.0 96.0;
    seq_by_bytes = range 5.0 2.0 29.0;
    rand_by_bytes = range 7.0 2.0 37.0;
  }

let t3_write_only =
  {
    accesses = range 11.0 6.0 17.0;
    bytes = range 19.0 7.0 36.0;
    whole_by_acc = range 67.0 50.0 79.0;
    seq_by_acc = range 29.0 18.0 47.0;
    rand_by_acc = range 4.0 2.0 8.0;
    whole_by_bytes = range 69.0 56.0 76.0;
    seq_by_bytes = range 19.0 4.0 27.0;
    rand_by_bytes = range 11.0 4.0 41.0;
  }

let t3_read_write =
  {
    accesses = range 1.0 0.0 1.0;
    bytes = range 1.0 0.0 3.0;
    whole_by_acc = range 0.0 0.0 0.0;
    seq_by_acc = range 0.0 0.0 0.0;
    rand_by_acc = range 100.0 100.0 100.0;
    whole_by_bytes = range 0.0 0.0 0.0;
    seq_by_bytes = range 0.0 0.0 0.0;
    rand_by_bytes = range 100.0 100.0 100.0;
  }

(* -- figures ----------------------------------------------------------------- *)

let fig1_pct_runs_under_10k = 80.0

let fig1_pct_bytes_in_runs_over_1m = 10.0

let fig2_pct_bytes_from_files_over_1m = 40.0

let fig3_pct_opens_under_quarter_s = 75.0

let fig4_pct_files_dead_under_30s = range 72.5 65.0 80.0

let fig4_pct_bytes_dead_under_30s = range 15.0 4.0 27.0

(* -- Table 4 ------------------------------------------------------------------ *)

let t4_avg_cache_mb = 7.0

(* approx: reconstructed from the table's size-change rows *)
let t4_change_15min_avg_kb = 493.0

let t4_change_15min_sd_kb = 1037.0

let t4_change_60min_avg_kb = 1049.0

let t4_change_60min_sd_kb = 1716.0

(* -- Tables 5 and 7 ------------------------------------------------------------ *)

let t5_reads_pct = 81.7

let t5_writes_pct = 18.3

let t5_paging_pct = 34.9

let t5_uncacheable_pct = 20.0

let t7_paging_pct = 35.0

let t7_shared_pct = 1.0

let t7_read_write_ratio = 2.0

let filter_ratio = 0.50

(* -- Table 6 -------------------------------------------------------------------- *)

type t6_row = {
  total : float;
  total_sd : float;
  migrated : float;
  migrated_sd : float;
}

let t6_read_miss =
  { total = 41.4; total_sd = 26.9; migrated = 22.2; migrated_sd = 20.4 }

let t6_read_miss_traffic =
  { total = 37.1; total_sd = 27.8; migrated = 31.7; migrated_sd = 22.3 }

let t6_writeback_traffic =
  { total = 88.4; total_sd = 455.4; migrated = nan; migrated_sd = nan }

let t6_write_fetch =
  { total = 1.2; total_sd = 6.8; migrated = 1.6; migrated_sd = 1.9 }

let t6_paging_read_miss =
  { total = 28.7; total_sd = 23.6; migrated = 8.8; migrated_sd = 40.3 }

(* -- Tables 8 and 9 --------------------------------------------------------------- *)

let t8_for_block_pct = 79.4

let t8_for_block_age_min = 47.6

let t8_to_vm_pct = 20.6

let t8_to_vm_age_min = 71.1

(* approx: three-fourths by the 30-s delay; of the rest, half by fsync and
   half by recalls; VM-page cleanings are negligible (Section 5.4) *)
let t9_delay_pct = 75.0

let t9_fsync_pct = 12.5

let t9_recall_pct = 12.5

let t9_vm_pct = 0.1

(* -- Table 10 ---------------------------------------------------------------------- *)

let t10_sharing = range 0.34 0.18 0.56

let t10_recall = range 1.7 0.79 3.35

(* -- Table 11 ---------------------------------------------------------------------- *)

type t11_col = {
  errors_per_hour : range;
  users_affected_per_trace : range;
  users_affected_all : float;
  opens_with_error : range;
  migrated_opens_with_error : range;
}

let t11_60s =
  {
    errors_per_hour = range 18.0 8.0 53.0;
    users_affected_per_trace = range 48.0 38.0 54.0;
    users_affected_all = 63.0;
    opens_with_error = range 0.34 0.21 0.93;
    migrated_opens_with_error = range 0.33 0.05 2.8;
  }

let t11_3s =
  {
    errors_per_hour = range 0.59 0.12 1.8;
    users_affected_per_trace = range 7.1 4.5 12.0;
    users_affected_all = 20.0;
    opens_with_error = range 0.011 0.0001 0.032;
    migrated_opens_with_error = range 0.005 0.0 0.055;
  }

(* -- Table 12 ----------------------------------------------------------------------- *)

type t12_row = { bytes_ratio : float; rpc_ratio : float }

let t12_sprite = { bytes_ratio = 1.0; rpc_ratio = 1.0 }

(* approx: "only the token approach shows an improvement... by 2% in terms
   of bytes and 20% in terms of remote procedure calls"; the modified
   scheme was indistinguishable from Sprite *)
let t12_modified = { bytes_ratio = 1.0; rpc_ratio = 1.0 }

let t12_token = { bytes_ratio = 0.98; rpc_ratio = 0.80 }
