lib/core/dataset.mli: Dfs_cache Dfs_sim Dfs_trace Dfs_workload
