lib/core/experiment.mli: Dataset
