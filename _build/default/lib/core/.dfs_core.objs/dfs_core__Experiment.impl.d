lib/core/experiment.ml: Array Dataset Dfs_analysis Dfs_consistency Dfs_sim Dfs_trace Dfs_util Float List Paper Printf String
