lib/core/paper.ml:
