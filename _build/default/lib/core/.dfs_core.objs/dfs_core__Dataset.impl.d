lib/core/dataset.ml: Array Dfs_cache Dfs_sim Dfs_trace Dfs_workload List Printf Sys
