lib/core/claims.ml: Buffer Dataset Dfs_analysis Dfs_consistency Dfs_sim Dfs_util List Printf
