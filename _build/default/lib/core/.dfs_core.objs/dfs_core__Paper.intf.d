lib/core/paper.mli:
