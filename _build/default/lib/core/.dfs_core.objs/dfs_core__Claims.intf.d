lib/core/claims.mli: Dataset
