(** The paper's headline findings as checkable claims.

    Each claim pairs a sentence from the paper with the function that
    measures the same quantity on a generated dataset and an acceptance
    band for the {e shape} (we run on a simulator, not the 1991 cluster,
    so absolute equality is not the bar).  The scorecard is printed by the
    benchmark harness and regenerated into EXPERIMENTS.md. *)

type verdict = Reproduced | Near | Off

val verdict_name : verdict -> string

type claim = {
  c_id : string;  (** e.g. "throughput-per-user" *)
  c_section : string;  (** paper section *)
  c_text : string;  (** the claim, paraphrased from the paper *)
  c_paper : float;  (** the paper's value *)
  c_unit : string;
  c_lo : float;  (** acceptance band *)
  c_hi : float;
  c_measure : Dataset.t -> float;
}

val all : claim list

type result = { claim : claim; measured : float; verdict : verdict }

val evaluate : Dataset.t -> result list

val scorecard : Dataset.t -> string
(** Plain-text table of every claim: paper value, measured value, verdict. *)

val markdown : Dataset.t -> string
(** The same scorecard as a markdown table (for EXPERIMENTS.md). *)
