(** Reference values transcribed from the paper, used by every
    experiment's report so that measured results print side by side with
    what Baker et al. measured on the Sprite cluster in 1991.

    Where the available copy of a table is partially illegible, values
    are reconstructed from the paper's prose and marked [approx]; see
    EXPERIMENTS.md for the per-cell provenance. *)

type range = { value : float; lo : float; hi : float }

val range : float -> float -> float -> range

(** {1 Table 2 — user activity} *)

type activity_col = {
  max_active : float;
  avg_active : float;
  sd_active : float;
  avg_tput : float;  (** KB/s per active user *)
  sd_tput : float;
  peak_user : float;
  peak_total : float;
}

val t2_all_10min : activity_col
val t2_mig_10min : activity_col
val t2_bsd_10min_avg_users : float
val t2_bsd_10min_tput : float
val t2_all_10s : activity_col
val t2_mig_10s : activity_col
val t2_bsd_10s_avg_users : float
val t2_bsd_10s_tput : float

(** {1 Table 3 — access patterns} (percent) *)

type t3_class = {
  accesses : range;
  bytes : range;
  whole_by_acc : range;
  seq_by_acc : range;
  rand_by_acc : range;
  whole_by_bytes : range;
  seq_by_bytes : range;
  rand_by_bytes : range;
}

val t3_read_only : t3_class
val t3_write_only : t3_class
val t3_read_write : t3_class

(** {1 Figures — headline points} *)

val fig1_pct_runs_under_10k : float
(** ~80% of runs are shorter than 10 KB. *)

val fig1_pct_bytes_in_runs_over_1m : float
(** At least 10% of bytes move in runs longer than 1 MB. *)

val fig2_pct_bytes_from_files_over_1m : float
(** ~40% of bytes come from files of 1 MB or more (trace 1). *)

val fig3_pct_opens_under_quarter_s : float
(** ~75% of opens last under a quarter second. *)

val fig4_pct_files_dead_under_30s : range
(** 65-80% of files die within 30 seconds. *)

val fig4_pct_bytes_dead_under_30s : range
(** Only ~4-27% of bytes die within 30 seconds. *)

(** {1 Table 4 — client cache sizes} *)

val t4_avg_cache_mb : float
(** ~7 MB out of ~24 MB of client memory. *)

val t4_change_15min_avg_kb : float
val t4_change_15min_sd_kb : float
val t4_change_60min_avg_kb : float
val t4_change_60min_sd_kb : float

(** {1 Table 5 / Table 7 — traffic shares} (percent of bytes) *)

val t5_reads_pct : float
(** 81.7 — raw traffic favours reads. *)

val t5_writes_pct : float

val t5_paging_pct : float
(** ~35% of raw bytes are paging. *)

val t5_uncacheable_pct : float
(** ~20% of raw traffic cannot be cached on clients. *)

val t7_paging_pct : float
(** ~35% of server bytes are paging. *)

val t7_shared_pct : float
(** ~1% of server traffic is write-shared file traffic. *)

val t7_read_write_ratio : float
(** Non-paging server reads outnumber writes about 2:1. *)

val filter_ratio : float
(** Client caches pass about 50% of raw traffic through to servers. *)

(** {1 Table 6 — cache effectiveness} (percent) *)

type t6_row = { total : float; total_sd : float; migrated : float; migrated_sd : float }

val t6_read_miss : t6_row
val t6_read_miss_traffic : t6_row
val t6_writeback_traffic : t6_row
(** The migrated column is NA in the paper; encoded as [nan]. *)

val t6_write_fetch : t6_row
val t6_paging_read_miss : t6_row

(** {1 Tables 8 and 9 — replacement and cleaning} *)

val t8_for_block_pct : float
val t8_for_block_age_min : float
val t8_to_vm_pct : float
val t8_to_vm_age_min : float

val t9_delay_pct : float
val t9_fsync_pct : float
val t9_recall_pct : float
val t9_vm_pct : float

(** {1 Table 10 — consistency actions} (percent of file opens) *)

val t10_sharing : range
val t10_recall : range

(** {1 Table 11 — stale-data errors under polling} *)

type t11_col = {
  errors_per_hour : range;
  users_affected_per_trace : range;  (** percent *)
  users_affected_all : float;  (** percent, over all traces *)
  opens_with_error : range;  (** percent *)
  migrated_opens_with_error : range;  (** percent *)
}

val t11_60s : t11_col
val t11_3s : t11_col

(** {1 Table 12 — consistency overheads} (ratios vs application demand) *)

type t12_row = { bytes_ratio : float; rpc_ratio : float }

val t12_sprite : t12_row
val t12_modified : t12_row
val t12_token : t12_row
