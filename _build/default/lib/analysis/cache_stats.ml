module Counters = Dfs_sim.Counters
module Traffic = Dfs_sim.Traffic
module Bc = Dfs_cache.Block_cache
module Stats = Dfs_util.Stats

(* -- Table 4 ----------------------------------------------------------------- *)

type change_report = { max_kb : float; avg_kb : float; sd_kb : float }

type size_report = {
  avg_bytes : float;
  sd_bytes : float;
  change_15min : change_report;
  change_60min : change_report;
  samples_used : int;
}

(* Group one client's chronological samples into windows of [window]
   seconds and compute max-min size within each active, reboot-free
   window. *)
let window_changes samples ~window =
  let changes = ref [] in
  let rec go = function
    | [] -> ()
    | (first : Counters.sample) :: _ as batch ->
      let in_window, rest =
        List.partition
          (fun (s : Counters.sample) -> s.time < first.time +. window)
          batch
      in
      let active =
        List.exists (fun (s : Counters.sample) -> s.active) in_window
      in
      let rebooted =
        List.exists (fun (s : Counters.sample) -> s.rebooted) in_window
      in
      if active && not rebooted then begin
        let sizes =
          List.map
            (fun (s : Counters.sample) -> float_of_int s.cache_bytes)
            in_window
        in
        let mx = List.fold_left Float.max neg_infinity sizes in
        let mn = List.fold_left Float.min infinity sizes in
        changes := (mx -. mn) :: !changes
      end;
      (* partition keeps order; [rest] starts the next window *)
      go rest
  in
  go samples;
  !changes

let change_report changes =
  let st = Stats.create () in
  List.iter (Stats.add st) changes;
  let kb x = x /. 1024.0 in
  if Stats.count st = 0 then { max_kb = 0.0; avg_kb = 0.0; sd_kb = 0.0 }
  else
    {
      max_kb = kb (Stats.max st);
      avg_kb = kb (Stats.mean st);
      sd_kb = kb (Stats.stddev st);
    }

let cache_sizes counters =
  let size_stats = Stats.create () in
  List.iter
    (fun (s : Counters.sample) ->
      Stats.add size_stats (float_of_int s.cache_bytes))
    (Counters.samples counters);
  let per_client = Counters.by_client counters in
  let all_changes window =
    List.concat_map (fun (_, samples) -> window_changes samples ~window) per_client
  in
  {
    avg_bytes = Stats.mean size_stats;
    sd_bytes = Stats.stddev size_stats;
    change_15min = change_report (all_changes (15.0 *. 60.0));
    change_60min = change_report (all_changes (60.0 *. 60.0));
    samples_used = Stats.count size_stats;
  }

(* -- Tables 5 and 7 ----------------------------------------------------------- *)

type traffic_row = {
  label : string;
  read_pct : float;
  write_pct : float;
  total_pct : float;
  read_bytes : int;
  write_bytes : int;
}

let traffic_rows traffic =
  let total = float_of_int (max 1 (Traffic.total traffic)) in
  List.map
    (fun cat ->
      let r = Traffic.read_bytes traffic cat in
      let w = Traffic.write_bytes traffic cat in
      {
        label = Traffic.category_name cat;
        read_pct = 100.0 *. float_of_int r /. total;
        write_pct = 100.0 *. float_of_int w /. total;
        total_pct = 100.0 *. float_of_int (r + w) /. total;
        read_bytes = r;
        write_bytes = w;
      })
    Traffic.all_categories

let cacheable_fraction traffic =
  let total = Traffic.total traffic in
  if total = 0 then 0.0
  else begin
    let cacheable =
      List.fold_left
        (fun acc cat ->
          if Traffic.cacheable cat then
            acc + Traffic.read_bytes traffic cat + Traffic.write_bytes traffic cat
          else acc)
        0 Traffic.all_categories
    in
    float_of_int cacheable /. float_of_int total
  end

(* -- Table 6 ------------------------------------------------------------------ *)

type ratio = { mean_pct : float; sd_pct : float }

type effectiveness = {
  read_miss : ratio;
  read_miss_traffic : ratio;
  writeback_traffic : ratio;
  write_fetch : ratio;
  paging_read_miss : ratio;
}

let ratio_of_stats st =
  { mean_pct = Stats.mean st; sd_pct = Stats.stddev st }

let pct a b = if b <= 0 then None else Some (100.0 *. float_of_int a /. float_of_int b)

let effectiveness stats_list ~migrated =
  let read_miss = Stats.create ()
  and read_miss_traffic = Stats.create ()
  and writeback_traffic = Stats.create ()
  and write_fetch = Stats.create ()
  and paging_read_miss = Stats.create () in
  List.iter
    (fun (s : Bc.stats) ->
      let file_cls = if migrated then s.migrated else s.file in
      let paging_cls = if migrated then s.migrated else s.paging in
      Option.iter (Stats.add read_miss)
        (pct file_cls.read_misses file_cls.read_ops);
      Option.iter (Stats.add read_miss_traffic)
        (pct file_cls.bytes_fetched file_cls.bytes_read);
      Option.iter (Stats.add write_fetch)
        (pct file_cls.write_fetches file_cls.write_ops);
      Option.iter (Stats.add paging_read_miss)
        (pct paging_cls.read_misses paging_cls.read_ops);
      (* Writeback traffic is only tracked cache-wide (writebacks are not
         attributable to migrated vs local processes), so it appears in
         the Total column only — the paper's Table 6 marks it NA for
         migrated processes too. *)
      if not migrated then
        Option.iter (Stats.add writeback_traffic)
          (pct s.writeback_bytes s.all.bytes_written))
    stats_list;
  {
    read_miss = ratio_of_stats read_miss;
    read_miss_traffic = ratio_of_stats read_miss_traffic;
    writeback_traffic = ratio_of_stats writeback_traffic;
    write_fetch = ratio_of_stats write_fetch;
    paging_read_miss = ratio_of_stats paging_read_miss;
  }

let filter_ratio ~raw ~server =
  let r = Traffic.total raw in
  if r = 0 then 0.0 else float_of_int (Traffic.total server) /. float_of_int r

(* -- Tables 8 and 9 ------------------------------------------------------------ *)

type reason_row = {
  r_label : string;
  blocks_pct : float;
  age_mean : float;
  age_sd : float;
  count : int;
}

let reason_rows rows =
  (* rows : (label, Stats.t) list list — one inner list per client *)
  match rows with
  | [] -> []
  | first :: _ ->
    let labels = List.map fst first in
    let merged =
      List.map
        (fun label ->
          let st =
            List.fold_left
              (fun acc per_client -> Stats.merge acc (List.assoc label per_client))
              (Stats.create ()) rows
          in
          (label, st))
        labels
    in
    let total =
      List.fold_left (fun acc (_, st) -> acc + Stats.count st) 0 merged
    in
    List.map
      (fun (label, st) ->
        {
          r_label = label;
          blocks_pct =
            (if total = 0 then 0.0
             else 100.0 *. float_of_int (Stats.count st) /. float_of_int total);
          age_mean = Stats.mean st;
          age_sd = Stats.stddev st;
          count = Stats.count st;
        })
      merged

let replacements stats_list =
  reason_rows
    (List.map
       (fun (s : Bc.stats) ->
         List.map
           (fun (reason, st) ->
             let label =
               match (reason : Bc.replace_reason) with
               | Bc.Replace_for_block -> "another file block"
               | Bc.Replace_to_vm -> "virtual memory page"
             in
             (label, st))
           s.replacements)
       stats_list)

let cleanings stats_list =
  reason_rows
    (List.map
       (fun (s : Bc.stats) ->
         List.map
           (fun (reason, st) -> (Bc.clean_reason_name reason, st))
           s.cleanings)
       stats_list)
