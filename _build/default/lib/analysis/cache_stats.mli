(** Tables 4-9: the file-cache measurements of Section 5, computed from
    the kernel counters and per-client cache statistics of a finished
    cluster run. *)

(** {1 Table 4 — client cache sizes} *)

type change_report = { max_kb : float; avg_kb : float; sd_kb : float }

type size_report = {
  avg_bytes : float;
  sd_bytes : float;
  change_15min : change_report;
  change_60min : change_report;
  samples_used : int;
}

val cache_sizes : Dfs_sim.Counters.t -> size_report
(** Size-change statistics use only intervals with user/CPU activity and
    screen out reboots, as the paper's Table 4 caption describes. *)

(** {1 Tables 5 and 7 — traffic breakdowns} *)

type traffic_row = {
  label : string;
  read_pct : float;
  write_pct : float;
  total_pct : float;
  read_bytes : int;
  write_bytes : int;
}

val traffic_rows : Dfs_sim.Traffic.t -> traffic_row list
(** One row per category, percentages of the tap's total bytes; works for
    both the raw client tap (Table 5) and the server tap (Table 7). *)

val cacheable_fraction : Dfs_sim.Traffic.t -> float

(** {1 Table 6 — client cache effectiveness} *)

type ratio = { mean_pct : float; sd_pct : float }

type effectiveness = {
  read_miss : ratio;  (** % of cache read ops that missed *)
  read_miss_traffic : ratio;  (** bytes from server / bytes read by apps *)
  writeback_traffic : ratio;  (** bytes written back / bytes written *)
  write_fetch : ratio;  (** % of cache write ops needing a fetch *)
  paging_read_miss : ratio;
}

val effectiveness :
  Dfs_cache.Block_cache.stats list -> migrated:bool -> effectiveness
(** Per-client ratios averaged across clients (mean and standard
    deviation of per-machine values, echoing the paper's "standard
    deviations of the daily averages for individual machines").  With
    [migrated], only requests from migrated processes are considered. *)

val filter_ratio : raw:Dfs_sim.Traffic.t -> server:Dfs_sim.Traffic.t -> float
(** Overall bytes-to-server / raw-bytes ratio (the paper measured ~50%). *)

(** {1 Tables 8 and 9 — replacement and cleaning} *)

type reason_row = {
  r_label : string;
  blocks_pct : float;
  age_mean : float;  (** seconds *)
  age_sd : float;
  count : int;
}

val replacements : Dfs_cache.Block_cache.stats list -> reason_row list

val cleanings : Dfs_cache.Block_cache.stats list -> reason_row list
