(** Section 5.3's absolute paging-rate observations:

    - "during the middle of the work-day each workstation transfers only
      about one 4-Kbyte page every three to four seconds";
    - "40 Sprite workstations collectively generate only about 42
      Kbytes/second of paging traffic, or about four percent of the
      bandwidth of an Ethernet";
    - "it currently takes about 6 to 7 ms for a server to fetch a 4-Kbyte
      page from a client cache over an Ethernet ... already substantially
      less than typical disk access times (20 to 30 ms)". *)

type t = {
  paging_kb_per_sec_cluster : float;  (** cluster-wide paging rate, KB/s *)
  seconds_per_page_per_client : float;
      (** average seconds between 4-KByte page transfers per workstation *)
  ethernet_utilization_pct : float;
      (** paging traffic as a share of the Ethernet's bandwidth *)
  network_page_fetch_ms : float;
      (** modelled time to move one 4-KByte page over the network *)
  disk_access_ms : float;  (** modelled disk access time *)
  backing_share_pct : float;
      (** backing-file share of paging bytes (paper: ~50%) *)
}

val analyze :
  n_clients:int ->
  duration:float ->
  raw:Dfs_sim.Traffic.t ->
  ?network:Dfs_sim.Network.config ->
  ?disk:Dfs_sim.Disk.config ->
  unit ->
  t
(** [duration] is the simulated seconds the tap covers. *)

val pp : Format.formatter -> t -> unit
