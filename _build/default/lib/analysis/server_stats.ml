type t = {
  server_read_ops : int;
  server_read_hit_pct : float;
  disk_reads : int;
  disk_writes : int;
  disk_read_mb : float;
  disk_write_mb : float;
  disk_read_write_ratio : float;
}

let analyze servers =
  let ops = ref 0 and hits = ref 0 in
  let d_reads = ref 0 and d_writes = ref 0 in
  let d_rbytes = ref 0 and d_wbytes = ref 0 in
  List.iter
    (fun server ->
      let s = (Dfs_cache.Block_cache.stats (Dfs_sim.Server.cache server)).all in
      ops := !ops + s.read_ops;
      hits := !hits + s.read_hits;
      let disk = Dfs_sim.Server.disk server in
      d_reads := !d_reads + Dfs_sim.Disk.reads disk;
      d_writes := !d_writes + Dfs_sim.Disk.writes disk;
      d_rbytes := !d_rbytes + Dfs_sim.Disk.bytes_read disk;
      d_wbytes := !d_wbytes + Dfs_sim.Disk.bytes_written disk)
    servers;
  {
    server_read_ops = !ops;
    server_read_hit_pct =
      (if !ops = 0 then 0.0
       else 100.0 *. float_of_int !hits /. float_of_int !ops);
    disk_reads = !d_reads;
    disk_writes = !d_writes;
    disk_read_mb = float_of_int !d_rbytes /. 1048576.0;
    disk_write_mb = float_of_int !d_wbytes /. 1048576.0;
    disk_read_write_ratio =
      (if !d_wbytes = 0 then 0.0
       else float_of_int !d_rbytes /. float_of_int !d_wbytes);
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>server caches: %.1f%% read hits over %d ops;@ disks: %d reads \
     (%.1f MB) vs %d writes (%.1f MB), read:write %.2f@]"
    t.server_read_hit_pct t.server_read_ops t.disk_reads t.disk_read_mb
    t.disk_writes t.disk_write_mb t.disk_read_write_ratio
