type cell = { accesses : int; bytes : int }

type class_report = {
  total : cell;
  whole_file : cell;
  other_sequential : cell;
  random : cell;
}

type t = {
  read_only : class_report;
  write_only : class_report;
  read_write : class_report;
  grand_total : cell;
}

let zero_cell = { accesses = 0; bytes = 0 }

let zero_class =
  {
    total = zero_cell;
    whole_file = zero_cell;
    other_sequential = zero_cell;
    random = zero_cell;
  }

let bump cell ~bytes = { accesses = cell.accesses + 1; bytes = cell.bytes + bytes }

let bump_class cr ~seq ~bytes =
  let total = bump cr.total ~bytes in
  match (seq : Session.sequentiality) with
  | Session.Whole_file -> { cr with total; whole_file = bump cr.whole_file ~bytes }
  | Session.Other_sequential ->
    { cr with total; other_sequential = bump cr.other_sequential ~bytes }
  | Session.Random -> { cr with total; random = bump cr.random ~bytes }

let analyze accesses =
  let ro = ref zero_class and wo = ref zero_class and rw = ref zero_class in
  let grand = ref zero_cell in
  List.iter
    (fun (a : Session.access) ->
      if not a.a_is_dir then
        match Session.usage a with
        | None -> ()
        | Some u ->
          let bytes = Session.bytes a in
          let seq = Session.sequentiality a in
          grand := bump !grand ~bytes;
          (match u with
          | Session.Read_only -> ro := bump_class !ro ~seq ~bytes
          | Session.Write_only -> wo := bump_class !wo ~seq ~bytes
          | Session.Read_write -> rw := bump_class !rw ~seq ~bytes))
    accesses;
  { read_only = !ro; write_only = !wo; read_write = !rw; grand_total = !grand }

let of_trace trace = analyze (Session.of_trace trace)

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let pct_accesses t cr = pct cr.total.accesses t.grand_total.accesses

let pct_bytes t cr = pct cr.total.bytes t.grand_total.bytes

let seq_cell cr = function
  | Session.Whole_file -> cr.whole_file
  | Session.Other_sequential -> cr.other_sequential
  | Session.Random -> cr.random

let seq_pct_accesses cr seq = pct (seq_cell cr seq).accesses cr.total.accesses

let seq_pct_bytes cr seq = pct (seq_cell cr seq).bytes cr.total.bytes
