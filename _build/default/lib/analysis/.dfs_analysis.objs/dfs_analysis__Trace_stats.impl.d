lib/analysis/trace_stats.ml: Dfs_trace Format List Session
