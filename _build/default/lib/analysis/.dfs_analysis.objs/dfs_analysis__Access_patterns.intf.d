lib/analysis/access_patterns.mli: Dfs_trace Session
