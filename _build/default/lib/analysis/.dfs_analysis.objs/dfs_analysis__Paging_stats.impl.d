lib/analysis/paging_stats.ml: Dfs_sim Dfs_util Format
