lib/analysis/lifetime.ml: Dfs_trace Dfs_util Float List Session
