lib/analysis/file_size.ml: Dfs_util List Session
