lib/analysis/server_stats.mli: Dfs_sim Format
