lib/analysis/activity.ml: Dfs_trace Dfs_util Float Format Hashtbl List Session
