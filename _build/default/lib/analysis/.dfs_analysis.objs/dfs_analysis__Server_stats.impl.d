lib/analysis/server_stats.ml: Dfs_cache Dfs_sim Format List
