lib/analysis/consistency_stats.ml: Dfs_trace Hashtbl List
