lib/analysis/open_time.mli: Dfs_trace Dfs_util Session
