lib/analysis/paging_stats.mli: Dfs_sim Format
