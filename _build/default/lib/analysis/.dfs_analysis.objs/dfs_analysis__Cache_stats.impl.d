lib/analysis/cache_stats.ml: Dfs_cache Dfs_sim Dfs_util Float List Option
