lib/analysis/activity.mli: Dfs_trace Format
