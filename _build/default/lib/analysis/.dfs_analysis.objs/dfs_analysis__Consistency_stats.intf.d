lib/analysis/consistency_stats.mli: Dfs_trace
