lib/analysis/session.mli: Dfs_trace
