lib/analysis/access_patterns.ml: List Session
