lib/analysis/file_size.mli: Dfs_trace Dfs_util Session
