lib/analysis/run_length.ml: Dfs_util List Session
