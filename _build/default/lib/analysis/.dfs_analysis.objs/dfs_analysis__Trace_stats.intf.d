lib/analysis/trace_stats.mli: Dfs_trace Format
