lib/analysis/session.ml: Dfs_trace Hashtbl List Option
