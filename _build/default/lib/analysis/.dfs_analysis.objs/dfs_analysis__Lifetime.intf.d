lib/analysis/lifetime.mli: Dfs_trace Dfs_util
