lib/analysis/open_time.ml: Dfs_util List Session
