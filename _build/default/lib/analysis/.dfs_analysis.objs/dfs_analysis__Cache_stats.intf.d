lib/analysis/cache_stats.mli: Dfs_cache Dfs_sim
