lib/analysis/run_length.mli: Dfs_trace Dfs_util Session
