type t = { by_files : Dfs_util.Cdf.t; by_bytes : Dfs_util.Cdf.t }

let analyze accesses =
  let by_files = Dfs_util.Cdf.create () in
  let by_bytes = Dfs_util.Cdf.create () in
  List.iter
    (fun (a : Session.access) ->
      if not a.a_is_dir then begin
        let size = float_of_int a.a_size_close in
        let transferred = Session.bytes a in
        Dfs_util.Cdf.add by_files size;
        if transferred > 0 then
          Dfs_util.Cdf.add by_bytes ~weight:(float_of_int transferred) size
      end)
    accesses;
  { by_files; by_bytes }

let of_trace trace = analyze (Session.of_trace trace)

let default_xs = Dfs_util.Cdf.log_xs ~lo:100.0 ~hi:10_485_760.0 ~per_decade:4
