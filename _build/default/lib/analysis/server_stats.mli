(** The server side of the cache hierarchy.

    Table 7's caption notes that the server's own cache "would further
    reduce the ratio of read traffic seen by the server's disk"; this
    module reports that second-level filtering: server-cache hit ratios
    and what actually reached the disks. *)

type t = {
  server_read_ops : int;
  server_read_hit_pct : float;  (** server cache hit ratio *)
  disk_reads : int;
  disk_writes : int;
  disk_read_mb : float;
  disk_write_mb : float;
  disk_read_write_ratio : float;  (** bytes read / bytes written at the disk *)
}

val analyze : Dfs_sim.Server.t list -> t

val pp : Format.formatter -> t -> unit
