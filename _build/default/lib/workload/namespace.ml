module User = Dfs_trace.Ids.User
module Fs = Dfs_sim.Fs_state
module Dist = Dfs_util.Dist
module Rng = Dfs_util.Rng

type binary = { exe : Fs.file_info; code_bytes : int; data_bytes : int }

type user_files = {
  uid : User.t;
  home_dir : Fs.file_info;
  mutable sources : Fs.file_info array;
  mutable objects : Fs.file_info option array;
  mailbox : Fs.file_info;
  mutable big_inputs : Fs.file_info list;
  mutable exe_out : Fs.file_info option;
  mutable doc_out : Fs.file_info option;
  mutable sim_log : Fs.file_info option;
  mutable stale_outputs : Fs.file_info list;
}

type t = {
  fs : Fs.t;
  rng : Rng.t;
  params : Params.t;
  bins : binary array;
  named_bins : (string, binary) Hashtbl.t;
  headers : Fs.file_info array;
  shared_dirs : Fs.file_info array;
  status_files : (Params.group * Fs.file_info) list;
  group_logs : (Params.group * Fs.file_info) list;
  group_sources : (Params.group * Fs.file_info array) list;
  users : user_files User.Tbl.t;
  mutable created_at : float;
}

let dir_entry_bytes = 32

let make_binary t ~now =
  let size = Dist.sample_int t.params.exe_size t.rng in
  let exe = Fs.create_file t.fs ~now ~size () in
  {
    exe;
    code_bytes =
      int_of_float (float_of_int size *. t.params.exe_code_fraction);
    data_bytes =
      int_of_float (float_of_int size *. t.params.exe_data_fraction);
  }

let create ~fs ~rng ~params ~now ~n_users =
  let t =
    {
      fs;
      rng;
      params;
      bins = [||];
      named_bins = Hashtbl.create 16;
      headers = [||];
      shared_dirs = [||];
      status_files = [];
      group_logs = [];
      group_sources = [];
      users = User.Tbl.create (max 16 n_users);
      created_at = now;
    }
  in
  let bins = Array.init params.bins_shared (fun _ -> make_binary t ~now) in
  let headers =
    Array.init params.headers_shared (fun _ ->
        Fs.create_file fs ~now
          ~size:(Dist.sample_int params.header_size rng)
          ())
  in
  let shared_dirs =
    Array.init 8 (fun _ ->
        Fs.create_file fs ~now ~dir:true
          ~size:((20 + Rng.int rng 200) * dir_entry_bytes)
          ())
  in
  let status_files =
    List.map
      (fun g -> (g, Fs.create_file fs ~now ~size:(2 * 1024) ()))
      Params.all_groups
  in
  let group_logs =
    List.map
      (fun g -> (g, Fs.create_file fs ~now ~size:(256 * 1024) ()))
      Params.all_groups
  in
  (* each group's shared project tree *)
  let group_sources =
    List.map
      (fun g ->
        ( g,
          Array.init 24 (fun _ ->
              Fs.create_file fs ~now
                ~size:(Dist.sample_int params.source_size rng)
                ()) ))
      Params.all_groups
  in
  { t with bins; headers; shared_dirs; status_files; group_logs; group_sources }

let fs t = t.fs

let user_files t uid =
  match User.Tbl.find_opt t.users uid with
  | Some u -> u
  | None ->
    let now = t.created_at in
    let n = t.params.sources_per_user in
    let u =
      {
        uid;
        home_dir =
          Fs.create_file t.fs ~now ~dir:true
            ~size:((n + 10) * dir_entry_bytes)
            ();
        sources =
          Array.init n (fun _ ->
              Fs.create_file t.fs ~now
                ~size:(Dist.sample_int t.params.source_size t.rng)
                ());
        objects = Array.make n None;
        mailbox = Fs.create_file t.fs ~now ~size:(24 * 1024) ();
        big_inputs = [];
        exe_out = None;
        doc_out = None;
        sim_log = None;
        stale_outputs = [];
      }
    in
    User.Tbl.replace t.users uid u;
    u

(* The everyday programs: modest, stable sizes, so their code pages stay
   resident (Sprite keeps code pages after exit) and repeated execs cost
   mostly initialized-data faults.  The huge kernel-sized images stay in
   the shared pool and are read as files, not exec'd. *)
let named_sizes =
  [
    ("editor", 180 * 1024);
    ("cc", 450 * 1024);
    ("sh", 64 * 1024);
    ("mail", 120 * 1024);
    ("troff", 250 * 1024);
    ("pmake", 160 * 1024);
    ("simulator", 1024 * 1024);
  ]

let pick_binary t ~rng ~name =
  match Hashtbl.find_opt t.named_bins name with
  | Some b -> b
  | None ->
    let b =
      match List.assoc_opt name named_sizes with
      | Some size ->
        let exe = Fs.create_file t.fs ~now:t.created_at ~size () in
        {
          exe;
          code_bytes =
            int_of_float (float_of_int size *. t.params.exe_code_fraction);
          data_bytes =
            int_of_float (float_of_int size *. t.params.exe_data_fraction);
        }
      | None -> t.bins.(Rng.int rng (Array.length t.bins))
    in
    Hashtbl.replace t.named_bins name b;
    b

let random_binary t ~rng = t.bins.(Rng.int rng (Array.length t.bins))

let pick_header t ~rng = t.headers.(Rng.int rng (Array.length t.headers))

let pick_source _t ~rng u =
  let n = Array.length u.sources in
  Rng.zipf rng ~n ~s:0.9 - 1

let shared_dir t ~rng = t.shared_dirs.(Rng.int rng (Array.length t.shared_dirs))

let group_status_file t g = List.assoc g t.status_files

let group_log t g = List.assoc g t.group_logs

let pick_group_source t ~rng g =
  let arr = List.assoc g t.group_sources in
  arr.(Rng.zipf rng ~n:(Array.length arr) ~s:0.8 - 1)

let new_file t ~now ~size = Fs.create_file t.fs ~now ~size ()
