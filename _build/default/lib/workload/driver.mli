(** Drives a cluster with the synthetic user population.

    Each user is a long-lived session process on their home workstation:
    think, pick an application from the group's mix, run it, repeat —
    modulated by the day/night activity profile.  Regular users live on
    their own machines; occasional users share. *)

type special_user = {
  su_group : Params.group;
  su_params : Params.t;  (** private parameter overrides *)
  su_app : Apps.app;  (** the one application this user runs repeatedly *)
  su_think : Dfs_util.Dist.t;
}
(** A dedicated user like the class-project pair of traces 3-4: one ran a
    simulator with ~20 MB inputs, the other produced and post-processed
    10 MB outputs, both repeatedly all day. *)

type t

val setup :
  cluster:Dfs_sim.Cluster.t ->
  params:Params.t ->
  ?start_hour:float ->
  ?special_users:special_user list ->
  unit ->
  t
(** Creates the namespace and user population and spawns all session
    processes (they begin with a short random stagger). *)

val board : t -> Migration.t

val namespace : t -> Namespace.t

val n_users : t -> int

val run : t -> until:float -> unit
(** Run the cluster's engine for the given simulated duration. *)
