(** Application models.

    Each model reproduces the file-access shape of one of the common
    applications named in Section 2 of the paper: interactive editing,
    program development (compiles, and parallel pmake builds that migrate
    jobs to idle hosts), electronic mail, document production, directory
    browsing / shell work, and the large-input simulations that dominate
    traces 3 and 4.

    Every model runs inside an {!Dfs_sim.Engine.spawn}ed process: its file
    operations advance simulated time, so the trace it leaves behind has
    realistic open durations, sequential runs, lifetimes, and burst
    structure. *)

type app = Edit | Compile | Pmake | Mail | Doc | Shell | Big_sim

val app_name : app -> string

val pick : Params.app_mix -> Dfs_util.Rng.t -> app

type ctx = {
  cluster : Dfs_sim.Cluster.t;
  params : Params.t;
  ns : Namespace.t;
  board : Migration.t;
  rng : Dfs_util.Rng.t;
  user : Dfs_trace.Ids.User.t;
  group : Params.group;
  home : int;  (** index of the user's own workstation *)
  uses_migration : bool;
      (** only some users offload work to idle hosts (the paper saw 6-11
          of ~40 users with migrated processes per trace) *)
}

val run : ctx -> app -> unit
(** Execute one invocation of the given application on the user's home
    machine (pmake additionally spawns migrated jobs on idle hosts).
    Must be called from inside an engine process. *)

(** The individual models, exposed for tests and examples. *)

val edit : ctx -> unit

val compile : ctx -> host:int -> migrated:bool -> unit

val pmake : ctx -> unit

val mail : ctx -> unit

val doc : ctx -> unit

val shell : ctx -> unit

val big_sim : ctx -> unit
