(** The shared file hierarchy the workload operates on: per-user home
    directories with program sources and mailboxes, the shared header and
    binary directories, per-group shared status files, and the large data
    files the simulation users keep re-reading.

    The initial population is created before the trace starts, so first
    touches of pre-existing files produce cold-cache misses, exactly like
    a freshly booted client in the measured cluster. *)

type binary = {
  exe : Dfs_sim.Fs_state.file_info;
  code_bytes : int;
  data_bytes : int;
}

type user_files = {
  uid : Dfs_trace.Ids.User.t;
  home_dir : Dfs_sim.Fs_state.file_info;
  mutable sources : Dfs_sim.Fs_state.file_info array;
  mutable objects : Dfs_sim.Fs_state.file_info option array;
      (** one slot per source; filled by compiles *)
  mailbox : Dfs_sim.Fs_state.file_info;
  mutable big_inputs : Dfs_sim.Fs_state.file_info list;
      (** simulator inputs, re-read across runs *)
  mutable exe_out : Dfs_sim.Fs_state.file_info option;
      (** the user's linked program, rewritten by each link step *)
  mutable doc_out : Dfs_sim.Fs_state.file_info option;
      (** formatted-document output, rewritten by each doc run *)
  mutable sim_log : Dfs_sim.Fs_state.file_info option;
      (** results log some simulator runs append to *)
  mutable stale_outputs : Dfs_sim.Fs_state.file_info list;
      (** simulator outputs awaiting cleanup on the next run *)
}

type t

val create :
  fs:Dfs_sim.Fs_state.t ->
  rng:Dfs_util.Rng.t ->
  params:Params.t ->
  now:float ->
  n_users:int ->
  t

val fs : t -> Dfs_sim.Fs_state.t

val user_files : t -> Dfs_trace.Ids.User.t -> user_files
(** Allocates the user's tree on first access. *)

val pick_binary : t -> rng:Dfs_util.Rng.t -> name:string -> binary
(** A named program (cc, ls, mail, ...) resolves to a stable binary; other
    names hash onto the shared pool. *)

val random_binary : t -> rng:Dfs_util.Rng.t -> binary

val pick_header : t -> rng:Dfs_util.Rng.t -> Dfs_sim.Fs_state.file_info

val pick_source :
  t -> rng:Dfs_util.Rng.t -> user_files -> int
(** Zipf-distributed index into the user's sources (locality: the same
    few files get edited again and again). *)

val shared_dir : t -> rng:Dfs_util.Rng.t -> Dfs_sim.Fs_state.file_info

val group_status_file : t -> Params.group -> Dfs_sim.Fs_state.file_info
(** The per-group scratch/status file that produces (rare) concurrent
    write-sharing. *)

val group_log : t -> Params.group -> Dfs_sim.Fs_state.file_info
(** The group's shared results log: simulators append megabyte-scale
    result batches, group members read recent batches back — the
    coarse-grained side of write-sharing. *)

val pick_group_source :
  t -> rng:Dfs_util.Rng.t -> Params.group -> Dfs_sim.Fs_state.file_info
(** A file from the group's shared project tree; members read these during
    compiles and occasionally edit them — the cross-client write traffic
    behind the recall and stale-data numbers. *)

val new_file :
  t -> now:float -> size:int -> Dfs_sim.Fs_state.file_info
(** A fresh zero-or-preset-size regular file (temporaries, outputs). *)
