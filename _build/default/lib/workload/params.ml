type group = Os_research | Architecture | Vlsi_parallel | Misc

let all_groups = [ Os_research; Architecture; Vlsi_parallel; Misc ]

let group_name = function
  | Os_research -> "operating systems"
  | Architecture -> "architecture / I/O simulation"
  | Vlsi_parallel -> "VLSI / parallel processing"
  | Misc -> "miscellaneous"

type app_mix = {
  edit : float;
  compile : float;
  pmake : float;
  mail : float;
  doc : float;
  shell : float;
  big_sim : float;
}

type group_params = {
  mix : app_mix;
  think_time : Dfs_util.Dist.t;
  big_input_size : Dfs_util.Dist.t;
  big_output_size : Dfs_util.Dist.t;
}

type t = {
  groups : (group * group_params) list;
  n_regular_users : int;
  n_occasional_users : int;
  source_size : Dfs_util.Dist.t;
  header_size : Dfs_util.Dist.t;
  object_size : Dfs_util.Dist.t;
  exe_size : Dfs_util.Dist.t;
  tmp_size : Dfs_util.Dist.t;
  sources_per_user : int;
  headers_shared : int;
  bins_shared : int;
  compile_sources : Dfs_util.Dist.t;
  compile_headers : Dfs_util.Dist.t;
  pmake_width : Dfs_util.Dist.t;
  link_probability : float;
  partial_read_probability : float;
  random_access_probability : float;
  edit_save_probability : float;
  process_rate : float;
  exe_code_fraction : float;
  exe_data_fraction : float;
  heap_dist : Dfs_util.Dist.t;
  hour_activity : float array;
  migration_enabled : bool;
}

open Dfs_util.Dist

let kb x = 1024.0 *. x

let mb x = 1048576.0 *. x

(* Log-normal around a median: mu is the log of the median. *)
let around median sigma lo hi =
  Clamped (Lognormal (log median, sigma), lo, hi)

let default_mix = function
  | Os_research ->
    {
      edit = 0.21;
      compile = 0.28;
      pmake = 0.12;
      mail = 0.10;
      doc = 0.03;
      shell = 0.22;
      big_sim = 0.04;
    }
  | Architecture ->
    {
      edit = 0.15;
      compile = 0.18;
      pmake = 0.08;
      mail = 0.08;
      doc = 0.03;
      shell = 0.18;
      big_sim = 0.24;
    }
  | Vlsi_parallel ->
    {
      edit = 0.17;
      compile = 0.20;
      pmake = 0.10;
      mail = 0.08;
      doc = 0.04;
      shell = 0.18;
      big_sim = 0.19;
    }
  | Misc ->
    {
      edit = 0.26;
      compile = 0.06;
      pmake = 0.02;
      mail = 0.25;
      doc = 0.15;
      shell = 0.26;
      big_sim = 0.00;
    }

let default_group g =
  {
    mix = default_mix g;
    think_time = Exponential 80.0;
    big_input_size =
      (match g with
      | Architecture | Vlsi_parallel ->
        Clamped (Pareto (1.45, mb 1.0), mb 1.0, mb 10.0)
      | Os_research | Misc -> around (mb 1.0) 0.7 (kb 128.0) (mb 6.0));
    big_output_size = around (mb 0.25) 0.8 (kb 64.0) (mb 3.0);
  }

(* Diurnal profile: quiet nights, ramp at 9, peak 10:00-18:00, evening tail. *)
let default_hours =
  [|
    0.05; 0.04; 0.03; 0.03; 0.03; 0.05; 0.08; 0.15; 0.45; 0.8; 1.0; 1.0;
    0.85; 0.95; 1.0; 1.0; 0.95; 0.85; 0.6; 0.45; 0.35; 0.25; 0.15; 0.08;
  |]

let default =
  {
    groups = List.map (fun g -> (g, default_group g)) all_groups;
    n_regular_users = 30;
    n_occasional_users = 40;
    source_size = around (kb 6.0) 1.1 128.0 (kb 200.0);
    header_size = around (kb 1.5) 0.9 64.0 (kb 50.0);
    object_size = around (kb 5.0) 1.0 512.0 (kb 400.0);
    exe_size =
      Mixture
        [
          (around (kb 150.0) 0.9 (kb 20.0) (mb 1.0), 0.92);
          (* kernel-sized binaries: the 2-10 MB images Section 4.2 mentions *)
          (around (mb 3.0) 0.6 (mb 1.5) (mb 10.0), 0.08);
        ];
    tmp_size = around (kb 2.0) 1.0 128.0 (kb 100.0);
    sources_per_user = 40;
    headers_shared = 120;
    bins_shared = 60;
    compile_sources = Uniform (2.0, 6.0);
    compile_headers = Uniform (6.0, 14.0);
    pmake_width = Uniform (4.0, 12.0);
    link_probability = 0.20;
    partial_read_probability = 0.22;
    random_access_probability = 0.05;
    edit_save_probability = 0.6;
    process_rate = 2.0e6;
    exe_code_fraction = 0.7;
    exe_data_fraction = 0.12;
    heap_dist = around (kb 700.0) 1.0 (kb 64.0) (mb 8.0);
    hour_activity = default_hours;
    migration_enabled = true;
  }

let group_of_user _t idx =
  match idx mod 4 with
  | 0 -> Os_research
  | 1 -> Architecture
  | 2 -> Vlsi_parallel
  | _ -> Misc

let find_group t g = List.assoc g t.groups
