(** Workload parameters.

    The measured cluster's users fell into four groups of roughly equal
    size — operating-system researchers, computer-architecture
    researchers simulating new I/O subsystems, a VLSI/parallel-processing
    group, and miscellaneous others — running interactive editors,
    program development, electronic mail, document production and
    simulation (Section 2).  These parameters encode that population:
    which applications each group runs and with what file-size and
    think-time distributions.

    Everything here is data so that presets (the eight traces) can be
    expressed as tweaks of {!default}. *)

type group = Os_research | Architecture | Vlsi_parallel | Misc

val all_groups : group list

val group_name : group -> string

(** Relative invocation weights of the application models. *)
type app_mix = {
  edit : float;
  compile : float;
  pmake : float;  (** migrated parallel make *)
  mail : float;
  doc : float;  (** document production *)
  shell : float;  (** directory listings, greps, small random access *)
  big_sim : float;  (** large-input/-output simulators *)
}

type group_params = {
  mix : app_mix;
  think_time : Dfs_util.Dist.t;  (** seconds between app invocations *)
  big_input_size : Dfs_util.Dist.t;  (** simulator input files *)
  big_output_size : Dfs_util.Dist.t;  (** simulator outputs *)
}

type t = {
  groups : (group * group_params) list;
  n_regular_users : int;  (** ~30 users do all their computing here *)
  n_occasional_users : int;  (** ~40 more use it occasionally *)
  (* file-size distributions *)
  source_size : Dfs_util.Dist.t;  (** program sources, mail pieces, docs *)
  header_size : Dfs_util.Dist.t;
  object_size : Dfs_util.Dist.t;
  exe_size : Dfs_util.Dist.t;  (** linked binaries (kernels ran 2-10 MB) *)
  tmp_size : Dfs_util.Dist.t;  (** compiler/editor temporaries *)
  (* population counts *)
  sources_per_user : int;
  headers_shared : int;
  bins_shared : int;  (** programs in the shared /bin *)
  (* application shape *)
  compile_sources : Dfs_util.Dist.t;  (** sources read per compile *)
  compile_headers : Dfs_util.Dist.t;
  pmake_width : Dfs_util.Dist.t;  (** parallel jobs per pmake *)
  link_probability : float;  (** a compile ends with a link step *)
  partial_read_probability : float;
      (** reads that stop before end of file (other-sequential accesses) *)
  random_access_probability : float;
      (** accesses performed with seeks (random accesses in Table 3) *)
  edit_save_probability : float;
  process_rate : float;  (** bytes/second an app "thinks about" data *)
  (* paging *)
  exe_code_fraction : float;  (** fraction of a binary that is code *)
  exe_data_fraction : float;
  heap_dist : Dfs_util.Dist.t;  (** dirty data+stack bytes per process *)
  (* day/night activity: multiplier on invocation rate per hour 0-23 *)
  hour_activity : float array;
  migration_enabled : bool;
}

val default : t

val group_of_user : t -> int -> group
(** Deterministic group assignment: user index modulo the four groups. *)

val find_group : t -> group -> group_params
