lib/workload/namespace.mli: Dfs_sim Dfs_trace Dfs_util Params
