lib/workload/migration.ml: Array Dfs_trace Dfs_util List Option
