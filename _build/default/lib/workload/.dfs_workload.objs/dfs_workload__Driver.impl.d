lib/workload/driver.ml: Apps Array Dfs_sim Dfs_trace Dfs_util Float List Migration Namespace Params
