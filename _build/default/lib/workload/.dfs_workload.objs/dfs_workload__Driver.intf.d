lib/workload/driver.mli: Apps Dfs_sim Dfs_util Migration Namespace Params
