lib/workload/migration.mli: Dfs_trace Dfs_util
