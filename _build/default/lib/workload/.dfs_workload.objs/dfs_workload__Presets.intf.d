lib/workload/presets.mli: Dfs_sim Driver Params
