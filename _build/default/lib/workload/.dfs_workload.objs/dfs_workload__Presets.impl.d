lib/workload/presets.ml: Apps Dfs_sim Dfs_util Driver List Params Printf
