lib/workload/apps.ml: Array Dfs_sim Dfs_trace Dfs_util Float Fun List Migration Namespace Option Params
