lib/workload/apps.mli: Dfs_sim Dfs_trace Dfs_util Migration Namespace Params
