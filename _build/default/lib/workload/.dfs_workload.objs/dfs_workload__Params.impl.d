lib/workload/params.ml: Dfs_util List
