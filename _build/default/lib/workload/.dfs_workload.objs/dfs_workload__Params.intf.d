lib/workload/params.mli: Dfs_util
