lib/workload/namespace.ml: Array Dfs_sim Dfs_trace Dfs_util Hashtbl List Params
