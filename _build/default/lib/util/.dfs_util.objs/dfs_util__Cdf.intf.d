lib/util/cdf.mli:
