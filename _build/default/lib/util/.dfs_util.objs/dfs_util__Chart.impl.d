lib/util/chart.ml: Array Buffer Bytes Cdf Float List Printf String
