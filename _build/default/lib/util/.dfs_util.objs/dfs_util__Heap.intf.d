lib/util/heap.mli:
