lib/util/lru.mli: Hashtbl
