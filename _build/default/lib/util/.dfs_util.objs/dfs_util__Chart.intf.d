lib/util/chart.mli: Cdf
