lib/util/rng.mli:
