lib/util/dist.ml: Float Format List Rng
