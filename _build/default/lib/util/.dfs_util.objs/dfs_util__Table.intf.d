lib/util/table.mli:
