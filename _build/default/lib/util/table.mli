(** Plain-text table rendering for reports, in the style of the paper's
    tables: a caption, a header row, aligned columns, and footnotes. *)

type align = Left | Right

type t

val create : ?caption:string -> columns:(string * align) list -> unit -> t

val add_row : t -> string list -> unit
(** The row must have exactly as many cells as there are columns. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val add_note : t -> string -> unit
(** Footnote text printed under the table. *)

val render : t -> string

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** Formatting helpers used throughout the reports. *)

val pct : float -> string
(** "41.4" style percentage body (no % sign). *)

val pct_sd : float -> float -> string
(** "41.4 (26.9)" — value with standard deviation, as in the paper. *)

val pct_range : float -> float -> float -> string
(** "88 (82-94)" — value with min-max range across traces. *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string
(** Two decimal places. *)

val int_str : int -> string

val bytes : float -> string
(** Human-readable byte count ("7.2 MB"). *)
