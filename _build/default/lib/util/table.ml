type align = Left | Right

type line = Row of string list | Separator

type t = {
  caption : string option;
  columns : (string * align) list;
  mutable lines : line list;  (* reversed *)
  mutable notes : string list;  (* reversed *)
}

let create ?caption ~columns () = { caption; columns; lines = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.lines <- Row row :: t.lines

let add_separator t = t.lines <- Separator :: t.lines

let add_note t s = t.notes <- s :: t.notes

let render t =
  let headers = List.map fst t.columns in
  let aligns = Array.of_list (List.map snd t.columns) in
  let rows =
    List.rev_map (function Row r -> Some r | Separator -> None) t.lines
  in
  let widths = Array.of_list (List.map String.length headers) in
  List.iter
    (function
      | Some cells ->
        List.iteri
          (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
          cells
      | None -> ())
    rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = width - String.length s in
    if fill <= 0 then s
    else
      match align with
      | Left -> s ^ String.make fill ' '
      | Right -> String.make fill ' ' ^ s
  in
  let rule () =
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_string buf "-+-";
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_cells cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.caption with
  | Some c ->
    Buffer.add_string buf c;
    Buffer.add_char buf '\n'
  | None -> ());
  emit_cells headers;
  rule ();
  List.iter (function Some cells -> emit_cells cells | None -> rule ()) rows;
  List.iter
    (fun note ->
      Buffer.add_string buf ("  " ^ note);
      Buffer.add_char buf '\n')
    (List.rev t.notes);
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let pct x = Printf.sprintf "%.1f" x

let pct_sd x sd = Printf.sprintf "%.1f (%.1f)" x sd

let pct_range x lo hi = Printf.sprintf "%.0f (%.0f-%.0f)" x lo hi

let f1 x = Printf.sprintf "%.1f" x

let f2 x = Printf.sprintf "%.2f" x

let int_str = string_of_int

let bytes x =
  let abs = Float.abs x in
  if abs >= 1_073_741_824.0 then Printf.sprintf "%.1f GB" (x /. 1_073_741_824.0)
  else if abs >= 1_048_576.0 then Printf.sprintf "%.1f MB" (x /. 1_048_576.0)
  else if abs >= 1024.0 then Printf.sprintf "%.1f KB" (x /. 1024.0)
  else Printf.sprintf "%.0f B" x
