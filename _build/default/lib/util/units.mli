(** Byte and time unit constants and formatting.

    Sizes are [int] bytes; simulated time is [float] seconds since the
    start of the simulation (the paper's traces also use relative time). *)

val kib : int
val mib : int
val block_size : int
(** 4 KBytes — Sprite's cache block size. *)

val blocks_of_bytes : int -> int
(** Number of [block_size] blocks needed to hold the given byte count
    (ceiling division; 0 bytes -> 0 blocks). *)

val minutes : float -> float
(** [minutes x] is [x] minutes in seconds. *)

val hours : float -> float

val pp_bytes : Format.formatter -> int -> unit

val pp_duration : Format.formatter -> float -> unit
(** "2h 14m 3s" style. *)
