(** Plain-text line charts for the figure reproductions: cumulative
    distributions drawn on a log-x axis, several series per chart, one
    glyph per series — close in spirit to the paper's Figures 1-4. *)

type series = {
  s_name : string;
  s_glyph : char;
  s_points : (float * float) array;
      (** (x, y) with y in [0, 100]; x ascending *)
}

val render :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  series list ->
  string
(** Draw the series on a log-x, linear-y (0-100%) grid.  [width] is the
    plot-area width in columns (default 64), [height] in rows (default
    16).  Series must contain at least one point with x > 0. *)

val of_cdf :
  name:string ->
  glyph:char ->
  xs:float array ->
  Cdf.t ->
  series
(** Sample a CDF at the given points into a plottable series
    (y in percent). *)
