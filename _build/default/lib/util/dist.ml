type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Lognormal of float * float
  | Pareto of float * float
  | Mixture of (t * float) list
  | Clamped of t * float * float

let rec sample d rng =
  match d with
  | Constant c -> c
  | Uniform (lo, hi) -> Rng.uniform rng lo hi
  | Exponential mean -> Rng.exponential rng mean
  | Lognormal (mu, sigma) -> Rng.lognormal rng ~mu ~sigma
  | Pareto (alpha, x_min) -> Rng.pareto rng ~alpha ~x_min
  | Mixture choices ->
    let pick = Rng.pick_weighted rng choices in
    sample pick rng
  | Clamped (d, lo, hi) -> Float.min hi (Float.max lo (sample d rng))

let sample_int d rng =
  let x = sample d rng in
  if x <= 0.0 then 0 else int_of_float (Float.round x)

let rec mean = function
  | Constant c -> c
  | Uniform (lo, hi) -> (lo +. hi) /. 2.0
  | Exponential m -> m
  | Lognormal (mu, sigma) -> exp (mu +. (sigma *. sigma /. 2.0))
  | Pareto (alpha, x_min) ->
    if alpha <= 1.0 then infinity else alpha *. x_min /. (alpha -. 1.0)
  | Mixture choices ->
    let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 choices in
    List.fold_left (fun acc (d, w) -> acc +. (w /. total *. mean d)) 0.0 choices
  | Clamped (d, _, _) -> mean d

let rec pp ppf = function
  | Constant c -> Format.fprintf ppf "const(%g)" c
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%g,%g)" lo hi
  | Exponential m -> Format.fprintf ppf "exp(mean=%g)" m
  | Lognormal (mu, sigma) -> Format.fprintf ppf "lognormal(%g,%g)" mu sigma
  | Pareto (alpha, x_min) -> Format.fprintf ppf "pareto(%g,%g)" alpha x_min
  | Mixture choices ->
    Format.fprintf ppf "mix[";
    List.iteri
      (fun i (d, w) ->
        if i > 0 then Format.fprintf ppf "; ";
        Format.fprintf ppf "%g:%a" w pp d)
      choices;
    Format.fprintf ppf "]"
  | Clamped (d, lo, hi) -> Format.fprintf ppf "clamp(%a,%g,%g)" pp d lo hi
