(** Composable one-dimensional distributions.

    Workload parameters (file sizes, think times, run lengths, ...) are
    expressed as values of type {!t} so that presets can be described as
    data and printed into reports. *)

type t =
  | Constant of float
  | Uniform of float * float  (** inclusive lower bound, exclusive upper *)
  | Exponential of float  (** mean *)
  | Lognormal of float * float  (** mu, sigma of the underlying normal *)
  | Pareto of float * float  (** alpha, x_min *)
  | Mixture of (t * float) list  (** weighted mixture; weights need not sum to 1 *)
  | Clamped of t * float * float  (** clamp samples into [lo, hi] *)

val sample : t -> Rng.t -> float
(** Draw one sample. *)

val sample_int : t -> Rng.t -> int
(** [sample] rounded to the nearest non-negative integer. *)

val mean : t -> float
(** Analytic mean where it exists; for [Clamped] this is the mean of the
    underlying distribution (an approximation) and for [Pareto] with
    [alpha <= 1] it is [infinity]. *)

val pp : Format.formatter -> t -> unit
