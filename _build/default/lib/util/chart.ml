type series = {
  s_name : string;
  s_glyph : char;
  s_points : (float * float) array;
}

let of_cdf ~name ~glyph ~xs cdf =
  {
    s_name = name;
    s_glyph = glyph;
    s_points =
      Array.map (fun x -> (x, 100.0 *. Cdf.fraction_below cdf x)) xs;
  }

let axis_value x =
  if x >= 1_048_576.0 then Printf.sprintf "%.0fM" (x /. 1_048_576.0)
  else if x >= 1024.0 then Printf.sprintf "%.0fK" (x /. 1024.0)
  else if x >= 1.0 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

let render ?(width = 64) ?(height = 16) ~title ~x_label series_list =
  let positive_xs =
    List.concat_map
      (fun s ->
        Array.to_list s.s_points
        |> List.filter_map (fun (x, _) -> if x > 0.0 then Some x else None))
      series_list
  in
  if positive_xs = [] then invalid_arg "Chart.render: no positive x values";
  let x_min = List.fold_left Float.min infinity positive_xs in
  let x_max = List.fold_left Float.max neg_infinity positive_xs in
  let x_max = if x_max <= x_min then x_min *. 10.0 else x_max in
  let log_min = log x_min and log_max = log x_max in
  let col_of_x x =
    if x <= 0.0 then 0
    else begin
      let f = (log x -. log_min) /. (log_max -. log_min) in
      min (width - 1) (max 0 (int_of_float (f *. float_of_int (width - 1))))
    end
  in
  let row_of_y y =
    (* row 0 is the top (100%) *)
    let f = y /. 100.0 in
    let r = int_of_float ((1.0 -. f) *. float_of_int (height - 1)) in
    min (height - 1) (max 0 r)
  in
  let grid = Array.make_matrix height width ' ' in
  (* light horizontal rules at 0/25/50/75/100 *)
  List.iter
    (fun y ->
      let r = row_of_y y in
      for c = 0 to width - 1 do
        grid.(r).(c) <- '.'
      done)
    [ 0.0; 25.0; 50.0; 75.0; 100.0 ];
  (* plot each series, interpolating between consecutive sample columns *)
  List.iter
    (fun s ->
      let pts =
        Array.to_list s.s_points |> List.filter (fun (x, _) -> x > 0.0)
      in
      let rec draw = function
        | (x0, y0) :: ((x1, y1) :: _ as rest) ->
          let c0 = col_of_x x0 and c1 = col_of_x x1 in
          for c = c0 to max c0 c1 do
            let f =
              if c1 = c0 then 0.0
              else float_of_int (c - c0) /. float_of_int (c1 - c0)
            in
            let y = y0 +. (f *. (y1 -. y0)) in
            grid.(row_of_y y).(c) <- s.s_glyph
          done;
          draw rest
        | [ (x0, y0) ] -> grid.(row_of_y y0).(col_of_x x0) <- s.s_glyph
        | [] -> ()
      in
      draw pts)
    series_list;
  let buf = Buffer.create ((width + 8) * (height + 4)) in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun r row ->
      let label =
        if r = row_of_y 100.0 then "100%"
        else if r = row_of_y 50.0 then " 50%"
        else if r = row_of_y 0.0 then "  0%"
        else "    "
      in
      Buffer.add_string buf label;
      Buffer.add_string buf " |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf "     +";
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  (* x-axis ticks: min, middle decade, max *)
  let tick_line = Bytes.make (width + 7) ' ' in
  let put_tick x =
    let label = axis_value x in
    let c = min (width - String.length label) (col_of_x x) in
    Bytes.blit_string label 0 tick_line (6 + c) (String.length label)
  in
  put_tick x_min;
  put_tick (exp ((log_min +. log_max) /. 2.0));
  put_tick x_max;
  Buffer.add_string buf (Bytes.to_string tick_line);
  Buffer.add_char buf '\n';
  Buffer.add_string buf ("     " ^ x_label ^ " (log scale)   ");
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "[%c] %s  " s.s_glyph s.s_name))
    series_list;
  Buffer.add_char buf '\n';
  Buffer.contents buf
