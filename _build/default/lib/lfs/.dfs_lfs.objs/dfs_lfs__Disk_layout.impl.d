lib/lfs/disk_layout.ml: Dfs_analysis Dfs_trace Dfs_util List
