lib/lfs/disk_layout.mli: Dfs_analysis
