(** Server disk-layout models for the paper's closing observation
    (Section 6): "if read hit ratios continue to improve, then writes will
    eventually dominate file system performance and new approaches, such
    as ... log-structured file systems, will become attractive"
    (Rosenblum & Ousterhout, reference 15).

    Two layouts service the same stream of server-level block operations:

    - {!In_place}: a classic update-in-place layout (FFS-flavoured); every
      block read or write pays a seek unless it lands right after the
      previous operation on the same file region;
    - {!Log}: a log-structured layout; writes accumulate in a segment
      buffer and go to disk in whole-segment appends (one seek per
      segment), at the cost of cleaning overhead proportional to segment
      utilization, and reads of cold data still seek.

    The models charge time only — seeks and transfers — which is all the
    crossover argument needs. *)

type op =
  | Read of { file : int; block : int }
  | Write of { file : int; block : int }

type params = {
  seek_time : float;  (** seconds per repositioning, ~0.02 in 1991 *)
  transfer_time : float;  (** seconds per 4-KByte block, ~0.003 *)
  segment_blocks : int;  (** log segment size in blocks *)
  cleaning_overhead : float;
      (** extra fraction of segment-write cost paid to the cleaner
          (0.3 = 30% of written segments must be cleaned/copied) *)
}

val default_params : params

type result = {
  ops : int;
  reads : int;
  writes : int;
  read_time : float;
  write_time : float;
  total_time : float;
}

val in_place : ?params:params -> op list -> result
(** Service the stream with update-in-place allocation. *)

val log_structured : ?params:params -> op list -> result
(** Service the stream with a log: writes are batched into segments. *)

val workload_of_accesses :
  ?read_miss_ratio:float ->
  ?metadata:bool ->
  seed:int ->
  Dfs_analysis.Session.access list ->
  op list
(** Derive a server-level block-operation stream from per-access totals:
    every written block becomes a server write (Sprite writes ~90% of new
    bytes through), each read block becomes a server read with probability
    [read_miss_ratio] (the client caches absorb the rest), and — unless
    [metadata] is false — every write-bearing access adds the inode and
    directory updates an FFS-style file system scatters across the disk,
    which is precisely the traffic a log batches away.  Deterministic for
    a given [seed]. *)

val crossover_table :
  Dfs_analysis.Session.access list ->
  seed:int ->
  (float * float * float) list
(** For a sweep of client read-miss ratios, the (miss_ratio,
    in_place_time, log_time) triples — the paper's "writes will dominate"
    argument in one table. *)
