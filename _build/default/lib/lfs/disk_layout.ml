type op = Read of { file : int; block : int } | Write of { file : int; block : int }

type params = {
  seek_time : float;
  transfer_time : float;
  segment_blocks : int;
  cleaning_overhead : float;
}

let default_params =
  {
    seek_time = 0.020;
    transfer_time = 0.003;
    segment_blocks = 128;
    cleaning_overhead = 0.3;
  }

type result = {
  ops : int;
  reads : int;
  writes : int;
  read_time : float;
  write_time : float;
  total_time : float;
}

let finish ~ops ~reads ~writes ~read_time ~write_time =
  { ops; reads; writes; read_time; write_time; total_time = read_time +. write_time }

(* Update in place: an operation is sequential (transfer only) when it hits
   the block right after the disk head's last position within the same
   file; anything else seeks. *)
let in_place ?(params = default_params) ops =
  let reads = ref 0 and writes = ref 0 in
  let read_time = ref 0.0 and write_time = ref 0.0 in
  let head = ref None in
  let service ~file ~block acc =
    let sequential =
      match !head with
      | Some (f, b) -> f = file && block = b + 1
      | None -> false
    in
    head := Some (file, block);
    acc := !acc +. params.transfer_time
           +. (if sequential then 0.0 else params.seek_time)
  in
  List.iter
    (fun op ->
      match op with
      | Read { file; block } ->
        incr reads;
        service ~file ~block read_time
      | Write { file; block } ->
        incr writes;
        service ~file ~block write_time)
    ops;
  finish ~ops:(List.length ops) ~reads:!reads ~writes:!writes
    ~read_time:!read_time ~write_time:!write_time

(* Log structure: writes fill an in-memory segment; a full segment costs
   one seek plus a whole-segment transfer, inflated by the cleaner.  Reads
   behave like in-place reads of cold data (the interesting term is the
   write path; LFS's read locality is workload-dependent and we charge it
   conservatively). *)
let log_structured ?(params = default_params) ops =
  let reads = ref 0 and writes = ref 0 in
  let read_time = ref 0.0 and write_time = ref 0.0 in
  let head = ref None in
  let pending = ref 0 in
  let flush_segment blocks =
    if blocks > 0 then begin
      let t =
        (params.seek_time +. (float_of_int blocks *. params.transfer_time))
        *. (1.0 +. params.cleaning_overhead)
      in
      write_time := !write_time +. t;
      (* the head ends up at the log tail, away from any file's data *)
      head := None
    end
  in
  List.iter
    (fun op ->
      match op with
      | Read { file; block } ->
        incr reads;
        let sequential =
          match !head with
          | Some (f, b) -> f = file && block = b + 1
          | None -> false
        in
        head := Some (file, block);
        read_time :=
          !read_time +. params.transfer_time
          +. (if sequential then 0.0 else params.seek_time)
      | Write _ ->
        incr writes;
        incr pending;
        if !pending >= params.segment_blocks then begin
          flush_segment !pending;
          pending := 0
        end)
    ops;
  flush_segment !pending;
  finish ~ops:(List.length ops) ~reads:!reads ~writes:!writes
    ~read_time:!read_time ~write_time:!write_time

let block_size = Dfs_util.Units.block_size

(* inode tables and directories live away from the data; model them as a
   shared pseudo-file with scattered blocks *)
let metadata_file = -1

let workload_of_accesses ?(read_miss_ratio = 0.4) ?(metadata = true) ~seed
    accesses =
  let rng = Dfs_util.Rng.create seed in
  let ops = ref [] in
  List.iter
    (fun (a : Dfs_analysis.Session.access) ->
      if not a.a_is_dir then begin
        let file = Dfs_trace.Ids.File.to_int a.a_file in
        let read_blocks = a.a_bytes_read / block_size in
        for b = 0 to read_blocks - 1 do
          if Dfs_util.Rng.bernoulli rng read_miss_ratio then
            ops := Read { file; block = b } :: !ops
        done;
        (* ~90% of written bytes reach the server (Table 6) *)
        let write_blocks = a.a_bytes_written / block_size in
        for b = 0 to write_blocks - 1 do
          if Dfs_util.Rng.bernoulli rng 0.9 then
            ops := Write { file; block = b } :: !ops
        done;
        (* each modified file costs an inode write and a directory write,
           scattered over the metadata region — FFS's seek-bound term *)
        if metadata && a.a_bytes_written > 0 then begin
          ops :=
            Write { file = metadata_file; block = Dfs_util.Rng.int rng 100000 }
            :: Write { file = metadata_file; block = Dfs_util.Rng.int rng 100000 }
            :: !ops
        end
      end)
    accesses;
  List.rev !ops

let crossover_table accesses ~seed =
  List.map
    (fun miss ->
      let ops = workload_of_accesses ~read_miss_ratio:miss ~seed accesses in
      let ip = in_place ops in
      let lg = log_structured ops in
      (miss, ip.total_time, lg.total_time))
    [ 0.4; 0.2; 0.1; 0.05; 0.02 ]
