(* Command-line driver for the reproduction: list, run and inspect the
   paper's experiments, generate trace files, and re-analyze them. *)

open Cmdliner

let scale_arg =
  let doc =
    "Trace length as a fraction of 24 hours (1.0 = full day). Defaults to \
     0.05, or 1.0 when DFS_FULL=1 is set."
  in
  Arg.(value & opt (some float) None & info [ "scale" ] ~docv:"FRACTION" ~doc)

let traces_arg =
  let doc = "Comma-separated trace numbers (1-8) to simulate." in
  Arg.(
    value
    & opt (list int) [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    & info [ "traces" ] ~docv:"N,..." ~doc)

let progress msg = Printf.eprintf "[dfs-repro] %s\n%!" msg

let make_dataset scale traces =
  Dfs_core.Dataset.generate ?scale ~traces ~on_progress:progress ()

(* -- list ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Dfs_core.Experiment.t) ->
        Printf.printf "%-8s %s\n         %s\n" e.id e.title e.description)
      Dfs_core.Experiment.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List all reproducible tables and figures")
    Term.(const run $ const ())

(* -- experiment -------------------------------------------------------------- *)

let experiment_cmd =
  let ids_arg =
    let doc = "Experiment ids (table1..table12, fig1..fig4)." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run ids scale traces =
    let unknown =
      List.filter (fun id -> Dfs_core.Experiment.find id = None) ids
    in
    if unknown <> [] then begin
      Printf.eprintf "unknown experiment(s): %s\nvalid: %s\n"
        (String.concat ", " unknown)
        (String.concat ", " Dfs_core.Experiment.ids);
      exit 1
    end;
    let ds = make_dataset scale traces in
    List.iter
      (fun id ->
        match Dfs_core.Experiment.find id with
        | Some e ->
          Printf.printf "=== %s: %s ===\n%s\n" e.id e.title (e.run ds)
        | None -> ())
      ids
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce specific tables/figures")
    Term.(const run $ ids_arg $ scale_arg $ traces_arg)

(* -- all ----------------------------------------------------------------------- *)

let all_cmd =
  let run scale traces =
    let ds = make_dataset scale traces in
    List.iter
      (fun (e : Dfs_core.Experiment.t) ->
        Printf.printf "=== %s: %s ===\n%s\n" e.id e.title (e.run ds))
      Dfs_core.Experiment.all
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Reproduce every table and figure")
    Term.(const run $ scale_arg $ traces_arg)

(* -- facts -------------------------------------------------------------------- *)

let facts_cmd =
  let markdown_arg =
    let doc = "Emit the scorecard as a markdown table (for EXPERIMENTS.md)." in
    Arg.(value & flag & info [ "markdown" ] ~doc)
  in
  let run scale traces markdown =
    let ds = make_dataset scale traces in
    if markdown then print_string (Dfs_core.Claims.markdown ds)
    else print_string (Dfs_core.Claims.scorecard ds)
  in
  Cmd.v
    (Cmd.info "facts"
       ~doc:
         "Check the paper's headline findings (the prose claims) against           the simulation")
    Term.(const run $ scale_arg $ traces_arg $ markdown_arg)

(* -- simulate ------------------------------------------------------------------- *)

let simulate_cmd =
  let out_arg =
    let doc = "Directory to write per-server trace files into." in
    Arg.(value & opt string "traces" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let trace_arg =
    let doc = "Which of the eight trace presets to simulate." in
    Arg.(value & opt int 1 & info [ "trace" ] ~docv:"N" ~doc)
  in
  let run n scale out =
    let preset = Dfs_workload.Presets.trace n in
    let preset =
      match scale with
      | Some s -> Dfs_workload.Presets.scaled preset ~factor:s
      | None -> Dfs_workload.Presets.scaled preset ~factor:(Dfs_core.Dataset.default_scale ())
    in
    progress
      (Printf.sprintf "simulating %s (%.1f h)" preset.name
         (preset.duration /. 3600.0));
    let cluster, _driver = Dfs_workload.Presets.run preset in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    List.iteri
      (fun i records ->
        let path = Filename.concat out (Printf.sprintf "%s-server%d.trace" preset.name i) in
        Dfs_trace.Writer.with_file path (fun w ->
            List.iter (Dfs_trace.Writer.write w) records);
        Printf.printf "wrote %s (%d records)\n" path (List.length records))
      (Dfs_sim.Cluster.server_traces cluster)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Simulate one trace preset and write per-server trace files")
    Term.(const run $ trace_arg $ scale_arg $ out_arg)

(* -- analyze --------------------------------------------------------------------- *)

let analyze_cmd =
  let files_arg =
    let doc = "Per-server trace files to merge and analyze." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc)
  in
  let run files =
    let streams =
      List.map
        (fun path ->
          match Dfs_trace.Reader.of_file path with
          | Ok records -> records
          | Error e ->
            Printf.eprintf "%s: %s\n" path e;
            exit 1)
        files
    in
    let merged =
      Dfs_trace.Merge.scrub ~self_users:Dfs_sim.Cluster.self_users
        (Dfs_trace.Merge.merge streams)
    in
    let stats = Dfs_analysis.Trace_stats.of_trace merged in
    Format.printf "%a@." Dfs_analysis.Trace_stats.pp stats;
    let act600 = Dfs_analysis.Activity.analyze ~interval:600.0 merged in
    let act10 = Dfs_analysis.Activity.analyze ~interval:10.0 merged in
    Format.printf "%a@.%a@." Dfs_analysis.Activity.pp act600
      Dfs_analysis.Activity.pp act10
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Merge and analyze previously written trace files")
    Term.(const run $ files_arg)

let main =
  let doc =
    "Reproduction of 'Measurements of a Distributed File System' (SOSP 1991)"
  in
  Cmd.group (Cmd.info "dfs-repro" ~doc)
    [ list_cmd; experiment_cmd; all_cmd; facts_cmd; simulate_cmd; analyze_cmd ]

let () = exit (Cmd.eval main)
